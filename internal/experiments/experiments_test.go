package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The env trains the whole zoo, so share one across the test file.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment env trains the full zoo")
	}
	envOnce.Do(func() {
		envVal, envErr = NewEnv(EnvConfig{Samples: 700, Epochs: 8, Seed: 3})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestE1ShapeMatchesPaperMotivation(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.E1DataDeluge()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("E1 rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.UploadEdge >= r.UploadCloud {
			t.Errorf("%s: DF2 upload not below DF1", r.Scenario)
		}
		// The deluge is video: camera scenarios must save orders of
		// magnitude; scalar sensors save much less (an honest finding —
		// Figure 1's motivation centers on video analytics).
		if strings.Contains(r.Scenario, "camera") && r.SavingFactor < 100 {
			t.Errorf("%s: saving factor %v < 100", r.Scenario, r.SavingFactor)
		}
	}
	// Camera scenarios dominate the deluge.
	if res.Rows[0].BytesPerHour <= res.Rows[2].BytesPerHour {
		t.Error("camera traffic should exceed meter traffic")
	}
	if !strings.Contains(res.Table, "Figure 1") {
		t.Error("table missing caption")
	}
}

func TestE2EdgeEdgeSpeedupAndFedProgress(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.E2Collaboration()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Speedup) != 4 {
		t.Fatalf("speedup points = %d", len(res.Speedup))
	}
	// More peers must not be slower, and 4 peers must give a real speedup.
	if res.Speedup[3] < 1.5 {
		t.Errorf("4-peer speedup = %v, want ≥ 1.5", res.Speedup[3])
	}
	if res.PeerLatency[3] > res.PeerLatency[0] {
		t.Error("4 peers slower than 1")
	}
	// Federated rounds improve or hold global accuracy overall.
	if len(res.FedAccuracy) != 3 {
		t.Fatalf("fed rounds = %d", len(res.FedAccuracy))
	}
	if res.FedAccuracy[2] < res.FedAccuracy[0]-0.02 {
		t.Errorf("federated accuracy regressed: %v", res.FedAccuracy)
	}
}

func TestE3DataflowShape(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.E3Dataflows()
	if err != nil {
		t.Fatal(err)
	}
	df1, df2, df3 := res.Rows[0], res.Rows[1], res.Rows[2]
	// Edge inference beats cloud round-trip latency (the EC promise).
	if df2.Latency >= df1.Latency {
		t.Errorf("edge %v not faster than cloud round-trip %v", df2.Latency, df1.Latency)
	}
	// Cloud dataflow pays WAN bytes; edge pays none.
	if df1.WANBytes <= 0 || df2.WANBytes != 0 || df3.WANBytes != 0 {
		t.Errorf("WAN bytes: %d/%d/%d", df1.WANBytes, df2.WANBytes, df3.WANBytes)
	}
	// Retraining lifts accuracy on the personalized domain (Dataflow 3).
	if df3.Accuracy <= df2.Accuracy {
		t.Errorf("retrained accuracy %v not above generic %v", df3.Accuracy, df2.Accuracy)
	}
}

func TestE4PipelineRuns(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.E4Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 50 || res.MeanPerCall <= 0 {
		t.Errorf("E4 = %+v", res)
	}
	if res.ModelledInfer <= 0 {
		t.Error("missing modelled inference cost")
	}
}

func TestE5SelectorShape(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.E5Selector()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Space) < 100 {
		t.Errorf("feasible space = %d points, want a dense 3-D space", len(res.Space))
	}
	// Every objective produced a selection, each satisfying its constraint.
	for _, obj := range []string{"min-latency", "max-accuracy", "min-energy", "min-memory"} {
		if _, ok := res.Selections[obj]; !ok {
			t.Errorf("missing selection for %s", obj)
		}
	}
	if res.Selections["min-latency"].ALEM.Accuracy < 0.7 {
		t.Error("min-latency selection violates accuracy constraint")
	}
	// Ablation: exhaustive ≤ q-learning ≤ greedy is the expected ordering
	// (greedy ignores latency entirely).
	ex := res.AblationLatency["exhaustive"]
	gr := res.AblationLatency["greedy"]
	ql := res.AblationLatency["qlearning"]
	if ex > ql || ex > gr {
		t.Errorf("exhaustive %v not the best (greedy %v, qlearning %v)", ex, gr, ql)
	}
	if gr < ql {
		t.Logf("note: greedy %v beat q-learning %v on this seed", gr, ql)
	}
}

func TestE7CompressionShape(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.E7Compression()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E7Row{}
	for _, r := range res.Rows {
		byName[r.Method] = r
	}
	// Ratios follow Table I's regimes.
	if r := byName["binary"]; r.Ratio < 25 {
		t.Errorf("binary ratio %v, want ≈32", r.Ratio)
	}
	if r := byName["kmeans k=16"]; r.Ratio < 6 {
		t.Errorf("kmeans ratio %v, want ≈8", r.Ratio)
	}
	if r := byName["int8"]; r.Ratio < 3.5 {
		t.Errorf("int8 ratio %v, want ≈4", r.Ratio)
	}
	// int8 and kmeans lose at most a few points of accuracy (the ≈1% loss
	// regime the paper cites, with slack for the miniature setting).
	if r := byName["int8"]; r.AccBefore-r.AccAfter > 0.05 {
		t.Errorf("int8 accuracy loss %v too high", r.AccBefore-r.AccAfter)
	}
	if r := byName["kmeans k=16"]; r.AccBefore-r.AccAfter > 0.1 {
		t.Errorf("kmeans accuracy loss %v too high", r.AccBefore-r.AccAfter)
	}
	// Fine-tuning recovers pruning damage.
	if r := byName["prune 80%"]; r.AccFineTuned < r.AccAfter-1e-9 {
		t.Errorf("fine-tune made pruning worse: %v -> %v", r.AccAfter, r.AccFineTuned)
	}
	// The stacked Deep Compression pipeline beats k-means sharing alone
	// (the Huffman stage is what the stack adds).
	if dc, km := byName["deep-compress"], byName["kmeans k=16"]; dc.Ratio <= km.Ratio {
		t.Errorf("deep-compress %.1fx does not beat kmeans alone %.1fx", dc.Ratio, km.Ratio)
	}
}

func TestE8OrderOfMagnitude(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.E8Headline()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		// The paper's goal: order-of-magnitude improvement in the cost
		// dimensions from co-optimized model + package.
		if r.LatencyGain < 10 {
			t.Errorf("%s: latency gain %.1fx < 10x", r.Device, r.LatencyGain)
		}
		if r.EnergyGain < 10 {
			t.Errorf("%s: energy gain %.1fx < 10x", r.Device, r.EnergyGain)
		}
		if r.MemoryGain < 10 {
			t.Errorf("%s: memory gain %.1fx < 10x", r.Device, r.MemoryGain)
		}
		// Without giving up much accuracy (SqueezeNet's claim).
		if r.AccuracyDelta < -0.15 {
			t.Errorf("%s: accuracy delta %v too negative", r.Device, r.AccuracyDelta)
		}
	}
}
