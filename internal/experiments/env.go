// Package experiments regenerates every figure and table of the paper as a
// text report (E1–E8; see DESIGN.md §4 for the index). Each experiment
// returns structured results plus a rendered table so cmd/experiments can
// print the same rows the paper reports and bench_test.go can assert the
// qualitative shape (who wins, by what factor).
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"openei/internal/alem"
	"openei/internal/dataset"
	"openei/internal/nn"
	"openei/internal/zoo"
)

// Env holds the shared fixtures: the shapes dataset and the trained model
// zoo. Building it trains all eight families, so construct it once and
// reuse it across experiments.
type Env struct {
	// Size and Classes describe the vision task.
	Size, Classes int
	// ShapesTrain and ShapesTest are the vision dataset splits.
	ShapesTrain, ShapesTest nn.Dataset
	// Models is the trained zoo, keyed by family name.
	Models map[string]*nn.Model
	// Profiler measures ALEM tuples on ShapesTest.
	Profiler *alem.Profiler
	// Seed drives every stochastic component.
	Seed int64
}

// EnvConfig controls fixture size; the zero value picks defaults that run
// the full suite in roughly a minute.
type EnvConfig struct {
	Samples int // shapes dataset size (default 1200)
	Epochs  int // zoo training epochs (default 10)
	Seed    int64
}

// NewEnv builds the fixtures: generates the dataset and trains the zoo.
func NewEnv(cfg EnvConfig) (*Env, error) {
	if cfg.Samples <= 0 {
		cfg.Samples = 1200
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	sc := dataset.ShapesConfig{Samples: cfg.Samples, Size: 16, Classes: 6, Noise: 0.3, Seed: cfg.Seed}
	train, test, err := dataset.Shapes(sc)
	if err != nil {
		return nil, err
	}
	models, err := zoo.TrainAll(train, sc.Size, sc.Classes, cfg.Epochs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Env{
		Size: sc.Size, Classes: sc.Classes,
		ShapesTrain: train, ShapesTest: test,
		Models:   models,
		Profiler: alem.NewProfiler(test),
		Seed:     cfg.Seed,
	}, nil
}

// Rand returns a fresh deterministic source derived from the env seed and
// a stream tag, so experiments do not perturb each other.
func (e *Env) Rand(stream int64) *rand.Rand {
	return rand.New(rand.NewSource(e.Seed*1000 + stream))
}

// table renders rows with a header using elastic tabs.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(w, strings.Join(sep, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	_ = w.Flush()
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func mb(bytes int64) string { return fmt.Sprintf("%.2f", float64(bytes)/(1<<20)) }
