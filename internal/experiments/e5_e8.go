package experiments

import (
	"fmt"
	"sort"
	"time"

	"openei/internal/alem"
	"openei/internal/compress"
	"openei/internal/hardware"
	"openei/internal/nn"
	"openei/internal/selector"
)

// E5Result is the Figure 5 / Equation 1 reproduction.
type E5Result struct {
	// TableRows is the full feasible ALEM space.
	Space []selector.Choice
	// Selections maps objective name → chosen combination.
	Selections map[string]selector.Choice
	// AblationLatency maps strategy → achieved latency under min-latency.
	AblationLatency map[string]time.Duration
	// Frontier is the Pareto-optimal subset of the space (every point any
	// Equation 1 constraint setting could ever select).
	Frontier []selector.Choice
	Table    string
}

// E5Selector profiles the full models × packages × devices space, solves
// Equation 1 under each objective, and ablates the selection strategy
// (exhaustive SA vs greedy vs Q-learning).
func (e *Env) E5Selector() (E5Result, error) {
	cands := selector.Variants(e.Models, true)
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Name != cands[j].Name {
			return cands[i].Name < cands[j].Name
		}
		return !cands[i].Quantized
	})
	pkgs := alem.Packages()
	devs := []hardware.Device{}
	for _, name := range []string{"rpi3", "rpi4", "jetson-nano", "jetson-tx2", "phone", "edge-server"} {
		d, err := hardware.ByName(name)
		if err != nil {
			return E5Result{}, err
		}
		devs = append(devs, d)
	}
	space, err := selector.Table(cands, pkgs, devs, e.Profiler)
	if err != nil {
		return E5Result{}, err
	}
	res := E5Result{
		Space:           space,
		Selections:      map[string]selector.Choice{},
		AblationLatency: map[string]time.Duration{},
	}

	// A representative sample of the space for the printed table: the
	// eipkg/rpi4 column for all float models.
	var rows [][]string
	for _, c := range space {
		if c.Package.Name == "eipkg" && c.Device.Name == "rpi4" && !c.Quantized {
			rows = append(rows, []string{
				c.ModelName, f3(c.ALEM.Accuracy),
				c.ALEM.Latency.Round(time.Microsecond).String(),
				fmt.Sprintf("%.4f", c.ALEM.Energy), mb(c.ALEM.Memory),
			})
		}
	}

	// Selections under each objective, with paper-style constraints.
	req := map[string]selector.Requirements{
		"min-latency":  {Objective: selector.MinLatency, MinAccuracy: 0.7},
		"max-accuracy": {Objective: selector.MaxAccuracy, MaxLatency: 20 * time.Millisecond},
		"min-energy":   {Objective: selector.MinEnergy, MinAccuracy: 0.7},
		"min-memory":   {Objective: selector.MinMemory, MinAccuracy: 0.7},
	}
	var selRows [][]string
	for _, name := range []string{"min-latency", "max-accuracy", "min-energy", "min-memory"} {
		choice, err := selector.Exhaustive(cands, pkgs, devs, req[name], e.Profiler)
		if err != nil {
			return E5Result{}, fmt.Errorf("objective %s: %w", name, err)
		}
		res.Selections[name] = choice
		q := ""
		if choice.Quantized {
			q = "+int8"
		}
		selRows = append(selRows, []string{
			name, choice.ModelName + q, choice.Package.Name, choice.Device.Name,
			f3(choice.ALEM.Accuracy), choice.ALEM.Latency.Round(time.Microsecond).String(),
			fmt.Sprintf("%.4f", choice.ALEM.Energy), mb(choice.ALEM.Memory),
		})
	}

	// Strategy ablation under min-latency.
	minReq := req["min-latency"]
	ex, err := selector.Exhaustive(cands, pkgs, devs, minReq, e.Profiler)
	if err != nil {
		return E5Result{}, err
	}
	gr, err := selector.Greedy(cands, pkgs, devs, minReq, e.Profiler)
	if err != nil {
		return E5Result{}, err
	}
	ql := &selector.QLearner{Episodes: 3000, Epsilon: 0.3, Rand: e.Rand(51)}
	qc, err := ql.Select(cands, pkgs, devs, minReq, e.Profiler)
	if err != nil {
		return E5Result{}, err
	}
	res.AblationLatency["exhaustive"] = ex.ALEM.Latency
	res.AblationLatency["greedy"] = gr.ALEM.Latency
	res.AblationLatency["qlearning"] = qc.ALEM.Latency
	ablRows := [][]string{
		{"exhaustive (SA)", ex.ALEM.Latency.Round(time.Microsecond).String(), ex.String()},
		{"greedy baseline", gr.ALEM.Latency.Round(time.Microsecond).String(), gr.String()},
		{"q-learning", qc.ALEM.Latency.Round(time.Microsecond).String(), qc.String()},
	}

	res.Frontier = selector.Pareto(space)
	frontRows := [][]string{}
	for i, c := range res.Frontier {
		if i >= 8 { // print the head of the frontier; the struct has it all
			frontRows = append(frontRows, []string{fmt.Sprintf("… %d more", len(res.Frontier)-8), "", "", ""})
			break
		}
		q := ""
		if c.Quantized {
			q = "+int8"
		}
		frontRows = append(frontRows, []string{
			c.ModelName + q + " / " + c.Package.Name + " / " + c.Device.Name,
			f3(c.ALEM.Accuracy), c.ALEM.Latency.Round(time.Microsecond).String(), mb(c.ALEM.Memory),
		})
	}

	res.Table = "E5 (Figure 5 / Eq. 1) — ALEM on eipkg/rpi4 (float models)\n" +
		table([]string{"model", "A", "L", "E (J)", "M (MB)"}, rows) +
		"\nE5b — selections under each objective (constraints: A≥0.70 or L≤20ms)\n" +
		table([]string{"objective", "model", "package", "device", "A", "L", "E", "M (MB)"}, selRows) +
		"\nE5c — strategy ablation (min-latency, A≥0.70)\n" +
		table([]string{"strategy", "latency", "choice"}, ablRows) +
		fmt.Sprintf("\nE5d — Pareto frontier: %d of %d points survive\n", len(res.Frontier), len(space)) +
		table([]string{"combination", "A", "L", "M (MB)"}, frontRows)
	return res, nil
}

// E6 is implemented directly as benchmarks (BenchmarkE6RESTAPI in
// bench_test.go); Summary prints its description for the harness.

// E7Row is one compression method's quantitative Table I entry.
type E7Row struct {
	Method       string
	Ratio        float64
	AccBefore    float64
	AccAfter     float64
	AccFineTuned float64
}

// E7Result is the Table I reproduction.
type E7Result struct {
	Rows  []E7Row
	Table string
}

// E7Compression quantifies Table I on the lenet family: each method's
// compression ratio and accuracy effect, raw and after a short fine-tune
// (distillation trains the student from scratch, so its "fine-tuned"
// column is the distilled result itself).
func (e *Env) E7Compression() (E7Result, error) {
	base := e.Models["lenet"]
	accBase, err := nn.Accuracy(base, e.ShapesTest.X, e.ShapesTest.Y)
	if err != nil {
		return E7Result{}, err
	}
	fineTune := func(m *nn.Model, stream int64) (float64, error) {
		if _, _, err := nn.Train(m, e.ShapesTrain, nn.TrainConfig{
			Epochs: 2, BatchSize: 32, LR: 0.005, Momentum: 0.9, Rand: e.Rand(stream),
		}); err != nil {
			return 0, err
		}
		return nn.Accuracy(m, e.ShapesTest.X, e.ShapesTest.Y)
	}
	accOf := func(m *nn.Model) (float64, error) {
		return nn.Accuracy(m, e.ShapesTest.X, e.ShapesTest.Y)
	}
	var res E7Result

	// Pruning (parameter sharing & pruning, row 1a).
	{
		m, err := base.Clone()
		if err != nil {
			return E7Result{}, err
		}
		rep, err := compress.Prune(m, 0.8)
		if err != nil {
			return E7Result{}, err
		}
		raw, err := accOf(m)
		if err != nil {
			return E7Result{}, err
		}
		ft, err := fineTune(m, 71)
		if err != nil {
			return E7Result{}, err
		}
		res.Rows = append(res.Rows, E7Row{"prune 80%", rep.Ratio(), accBase, raw, ft})
	}
	// k-means weight sharing (row 1b).
	{
		m, err := base.Clone()
		if err != nil {
			return E7Result{}, err
		}
		rep, err := compress.KMeansShare(m, 16, 12, e.Rand(72))
		if err != nil {
			return E7Result{}, err
		}
		raw, err := accOf(m)
		if err != nil {
			return E7Result{}, err
		}
		res.Rows = append(res.Rows, E7Row{"kmeans k=16", rep.Ratio(), accBase, raw, raw})
	}
	// Binary quantization (row 1c).
	{
		m, err := base.Clone()
		if err != nil {
			return E7Result{}, err
		}
		rep, err := compress.Binarize(m)
		if err != nil {
			return E7Result{}, err
		}
		raw, err := accOf(m)
		if err != nil {
			return E7Result{}, err
		}
		ft, err := fineTune(m, 73)
		if err != nil {
			return E7Result{}, err
		}
		res.Rows = append(res.Rows, E7Row{"binary", rep.Ratio(), accBase, raw, ft})
	}
	// int8 post-training quantization.
	{
		m, err := base.Clone()
		if err != nil {
			return E7Result{}, err
		}
		rep, err := compress.QuantizeInt8(m)
		if err != nil {
			return E7Result{}, err
		}
		raw, err := accOf(m)
		if err != nil {
			return E7Result{}, err
		}
		res.Rows = append(res.Rows, E7Row{"int8", rep.Ratio(), accBase, raw, raw})
	}
	// Low-rank factorization (Table I row 2).
	{
		lr, rep, err := compress.LowRank(base, 0.4, e.Rand(74))
		if err != nil {
			return E7Result{}, err
		}
		raw, err := accOf(lr)
		if err != nil {
			return E7Result{}, err
		}
		ft, err := fineTune(lr, 75)
		if err != nil {
			return E7Result{}, err
		}
		res.Rows = append(res.Rows, E7Row{"lowrank r=0.4", rep.Ratio(), accBase, raw, ft})
	}
	// The full Deep Compression pipeline (Han et al. [19], which Table
	// I's discussion cites): prune → k-means share → Huffman coding. No
	// fine-tune between stages: plain retraining would regrow the pruned
	// zeros (this repo's trainer has no sparsity mask), so the row
	// reports the raw stacked effect, which is the storage claim anyway.
	{
		m, err := base.Clone()
		if err != nil {
			return E7Result{}, err
		}
		rep, err := compress.DeepCompress(m, 0.8, 16, e.Rand(78))
		if err != nil {
			return E7Result{}, err
		}
		raw, err := accOf(m)
		if err != nil {
			return E7Result{}, err
		}
		res.Rows = append(res.Rows, E7Row{"deep-compress", rep.Ratio(), accBase, raw, raw})
	}
	// Knowledge transfer / distillation (Table I row 3).
	{
		student, err := e.Models["bonsai-m"].Clone()
		if err != nil {
			return E7Result{}, err
		}
		student.InitParams(e.Rand(76))
		if _, err := nn.DistillTrain(student, base, e.ShapesTrain, 3, 0.3, nn.TrainConfig{
			Epochs: 8, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: e.Rand(77),
		}); err != nil {
			return E7Result{}, err
		}
		acc, err := accOf(student)
		if err != nil {
			return E7Result{}, err
		}
		ratio := float64(base.WeightBytes()) / float64(student.WeightBytes())
		res.Rows = append(res.Rows, E7Row{"distill→bonsai-m", ratio, accBase, acc, acc})
	}

	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{
			r.Method, fmt.Sprintf("%.1fx", r.Ratio),
			f3(r.AccBefore), f3(r.AccAfter), f3(r.AccFineTuned),
		})
	}
	res.Table = "E7 (Table I) — compression toolbox on lenet\n" +
		table([]string{"method", "ratio", "acc before", "acc raw", "acc fine-tuned"}, rows)
	return res, nil
}

// E8Row compares baseline vs co-optimized deployment on one device.
type E8Row struct {
	Device        string
	Chosen        string
	Baseline      alem.ALEM
	Optimized     alem.ALEM
	LatencyGain   float64
	EnergyGain    float64
	MemoryGain    float64
	AccuracyDelta float64
}

// E8Result is the §III headline-claim reproduction.
type E8Result struct {
	Rows  []E8Row
	Table string
}

// E8Headline tests the paper's goal statement: "the EI attributes …
// will have an order of magnitude improvement comparing to the current AI
// algorithms running on the deep learning package". Baseline: vgg-m (the
// heavyweight cloud-era model) run unmodified on cloudpkg-m. Optimized:
// whatever OpenEI's own selector picks on eipkg under the constraint that
// accuracy stays within 5 points of the baseline — the framework's actual
// mechanism, not a hand-picked model.
//
// The claim is evaluated on the constrained SBC class the paper's
// walk-through targets (Raspberry Pi); on accelerator-class boards the
// fixed dispatch overhead floors the achievable gain (see EXPERIMENTS.md).
func (e *Env) E8Headline() (E8Result, error) {
	baseModel := e.Models["vgg-m"]
	cloudPkg, err := alem.PackageByName("cloudpkg-m")
	if err != nil {
		return E8Result{}, err
	}
	eiPkg, err := alem.PackageByName("eipkg")
	if err != nil {
		return E8Result{}, err
	}
	baseAcc, err := nn.Accuracy(baseModel, e.ShapesTest.X, e.ShapesTest.Y)
	if err != nil {
		return E8Result{}, err
	}
	cands := selector.Variants(e.Models, true)
	var res E8Result
	var rows [][]string
	for _, devName := range []string{"rpi3", "rpi4"} {
		dev, err := hardware.ByName(devName)
		if err != nil {
			return E8Result{}, err
		}
		baseA, err := e.Profiler.Profile(baseModel, cloudPkg, dev, alem.Variant{})
		if err != nil {
			return E8Result{}, err
		}
		choice, err := selector.Exhaustive(cands, []alem.Package{eiPkg}, []hardware.Device{dev},
			selector.Requirements{Objective: selector.MinLatency, MinAccuracy: baseAcc - 0.05}, e.Profiler)
		if err != nil {
			return E8Result{}, err
		}
		optA := choice.ALEM
		chosen := choice.ModelName
		if choice.Quantized {
			chosen += "+int8"
		}
		row := E8Row{
			Device: devName, Chosen: chosen, Baseline: baseA, Optimized: optA,
			LatencyGain:   float64(baseA.Latency) / float64(optA.Latency),
			EnergyGain:    baseA.Energy / optA.Energy,
			MemoryGain:    float64(baseA.Memory) / float64(optA.Memory),
			AccuracyDelta: optA.Accuracy - baseA.Accuracy,
		}
		res.Rows = append(res.Rows, row)
		rows = append(rows, []string{
			devName, chosen,
			fmt.Sprintf("%.1fx", row.LatencyGain),
			fmt.Sprintf("%.1fx", row.EnergyGain),
			fmt.Sprintf("%.1fx", row.MemoryGain),
			fmt.Sprintf("%+.3f", row.AccuracyDelta),
		})
	}
	res.Table = "E8 (§III headline) — vgg-m on cloudpkg-m vs the selector's eipkg choice (A ≥ baseline−0.05)\n" +
		table([]string{"device", "selected", "latency gain", "energy gain", "memory gain", "Δaccuracy"}, rows)
	return res, nil
}
