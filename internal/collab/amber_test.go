package collab

import (
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"openei/internal/apps"
	"openei/internal/dataset"
	"openei/internal/datastore"
	"openei/internal/libei"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/sensors"
	"openei/internal/zoo"
)

// amberNode spins one edge serving safety/detection over HTTP with a
// camera that last saw the given class (fed until the label matches).
func amberNode(t *testing.T, id string, model *nn.Model, wantLast int, seed int64) *libei.Client {
	t.Helper()
	mgr := manager(t, "eipkg", "rpi4")
	if err := mgr.Load(model, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	store := datastore.New(8)
	cam, err := sensors.NewCamera("camera1", 16, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Register(cam.Info()); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)
	for i := 0; ; i++ {
		if err := store.Append("camera1", cam.Next(at.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
		if cam.LastLabel() == wantLast {
			break
		}
		if i > 500 {
			t.Fatalf("camera never produced class %d", wantLast)
		}
	}
	srv := libei.NewServer(id, store, mgr)
	if err := srv.RegisterAll(apps.Safety(apps.SafetyConfig{
		Store: store, Manager: mgr, ModelName: model.Name,
		DefaultCamera: "camera1", Labels: dataset.ShapeClassNames[:4], FirearmClass: 3,
	})); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return libei.NewClient(ts.URL)
}

func TestAmberAlertFindsTargetAcrossEdges(t *testing.T) {
	train, _, err := dataset.Shapes(dataset.ShapesConfig{Samples: 700, Size: 16, Classes: 4, Noise: 0.2, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	model, err := zoo.Build("lenet", 16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Train(model, train, nn.TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}

	const target = 3 // "cross"
	// Node A last saw the target; node B last saw class 0.
	a := amberNode(t, "edge-a", model, target, 101)
	b := amberNode(t, "edge-b", model, 0, 102)
	// A dead node: client pointing at a closed server.
	dead := httptest.NewServer(nil)
	deadClient := libei.NewClient(dead.URL)
	dead.Close()

	sightings, errs := AmberAlert([]*libei.Client{a, b, deadClient},
		AmberQuery{TargetClass: target, Video: "camera1"})
	if len(errs) != 1 {
		t.Errorf("errs = %v, want exactly the dead node", errs)
	}
	// Node A must report a sighting (the model is highly accurate on clean
	// glyphs); node B must not.
	foundA, foundB := false, false
	for _, s := range sightings {
		switch s.NodeID {
		case "edge-a":
			foundA = true
			if s.Confidence <= 0 {
				t.Errorf("sighting confidence = %v", s.Confidence)
			}
		case "edge-b":
			foundB = true
		}
	}
	if !foundA {
		t.Error("edge-a did not report the target sighting")
	}
	if foundB {
		t.Error("edge-b reported a sighting it should not have")
	}
}

func TestAmberAlertConfidenceFilter(t *testing.T) {
	train, _, err := dataset.Shapes(dataset.ShapesConfig{Samples: 500, Size: 16, Classes: 4, Noise: 0.2, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	model, err := zoo.Build("lenet", 16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Train(model, train, nn.TrainConfig{Epochs: 6, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	a := amberNode(t, "edge-a", model, 3, 103)
	// An impossible confidence bar filters everything out.
	sightings, errs := AmberAlert([]*libei.Client{a}, AmberQuery{TargetClass: 3, MinConfidence: 1.01})
	if len(errs) != 0 {
		t.Errorf("errs = %v", errs)
	}
	if len(sightings) != 0 {
		t.Errorf("sightings = %v, want none above confidence 1.01", sightings)
	}
}
