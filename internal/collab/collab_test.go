package collab

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/cloud"
	"openei/internal/dataset"
	"openei/internal/hardware"
	"openei/internal/netsim"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
)

func manager(t *testing.T, pkgName, devName string) *pkgmgr.Manager {
	t.Helper()
	pkg, err := alem.PackageByName(pkgName)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName(devName)
	if err != nil {
		t.Fatal(err)
	}
	m := pkgmgr.New(pkg, dev)
	t.Cleanup(m.Close)
	return m
}

func powerData(t *testing.T, seed int64) (nn.Dataset, nn.Dataset) {
	t.Helper()
	train, test, err := dataset.Power(dataset.PowerConfig{Samples: 400, Window: 32, Noise: 0.08, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func trainedNet(t *testing.T, name string, train nn.Dataset, epochs int, hidden int) *nn.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	m := nn.MustModel(name, []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: hidden},
		{Type: "relu"},
		{Type: "dense", In: hidden, Out: 5},
	})
	m.InitParams(rng)
	if _, _, err := nn.Train(m, train, nn.TrainConfig{Epochs: epochs, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDeployMovesModelToEdge(t *testing.T) {
	train, test := powerData(t, 70)
	reg := cloud.NewRegistry()
	m := trainedNet(t, "power", train, 10, 32)
	if _, err := reg.PublishModel(m); err != nil {
		t.Fatal(err)
	}
	edge := manager(t, "eipkg", "rpi4")
	meter := netsim.NewMeter()
	rep, err := Deploy(reg, edge, "power", netsim.WAN, meter, pkgmgr.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesMoved <= 0 || rep.TransferTime <= 0 {
		t.Errorf("deploy report %+v", rep)
	}
	if meter.Bytes("wan") != rep.BytesMoved {
		t.Errorf("meter recorded %d, report says %d", meter.Bytes("wan"), rep.BytesMoved)
	}
	res, err := edge.Infer("power", test.X)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accOf(res.Classes, test.Y); acc < 0.7 {
		t.Errorf("deployed model accuracy = %v", acc)
	}
}

func TestDeployUnknownModel(t *testing.T) {
	reg := cloud.NewRegistry()
	edge := manager(t, "eipkg", "rpi4")
	if _, err := Deploy(reg, edge, "ghost", netsim.WAN, nil, pkgmgr.LoadOptions{}); !errors.Is(err, cloud.ErrUnknownModel) {
		t.Errorf("err = %v, want ErrUnknownModel", err)
	}
}

func accOf(pred, want []int) float64 {
	c := 0
	for i := range pred {
		if pred[i] == want[i] {
			c++
		}
	}
	return float64(c) / float64(len(pred))
}

func TestUploadRetrainedPublishes(t *testing.T) {
	train, _ := powerData(t, 71)
	reg := cloud.NewRegistry()
	m := trainedNet(t, "power", train, 5, 24)
	if _, err := reg.PublishModel(m); err != nil {
		t.Fatal(err)
	}
	edge := manager(t, "eipkg", "laptop")
	if _, err := Deploy(reg, edge, "power", netsim.WAN, nil, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	if err := edge.TransferLearn("power", train, 1, 2, rng); err != nil {
		t.Fatal(err)
	}
	meter := netsim.NewMeter()
	v, bytes, err := UploadRetrained(edge, reg, "power", "power-edge1", netsim.WAN, meter)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || bytes <= 0 {
		t.Errorf("upload v=%d bytes=%d", v, bytes)
	}
	if _, _, err := reg.FetchModel("power-edge1"); err != nil {
		t.Errorf("uploaded model not fetchable: %v", err)
	}
}

func TestDDNNEarlyExitSweep(t *testing.T) {
	train, test := powerData(t, 72)
	// Small uncertain edge model vs large confident cloud model.
	edgeModel := trainedNet(t, "edge-net", train, 2, 6)
	cloudModel := trainedNet(t, "cloud-net", train, 15, 64)

	edge := manager(t, "eipkg", "rpi3")
	cld := manager(t, "cloudpkg-m", "cloud-gpu")
	if err := edge.Load(edgeModel, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := cld.Load(cloudModel, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}

	prevOffload := -1
	var accLow, accHigh float64
	for _, th := range []float64{0, 0.6, 0.99} {
		d := &DDNN{Edge: edge, EdgeModel: "edge-net", Cloud: cld, CloudName: "cloud-net", Link: netsim.WAN, Threshold: th}
		res, err := d.Infer(test.X)
		if err != nil {
			t.Fatal(err)
		}
		if res.Offloaded < prevOffload {
			t.Errorf("offload count decreased as threshold rose: %d -> %d", prevOffload, res.Offloaded)
		}
		prevOffload = res.Offloaded
		acc := accOf(res.Classes, test.Y)
		switch th {
		case 0:
			accLow = acc
			if res.Offloaded != 0 {
				t.Errorf("threshold 0 offloaded %d samples", res.Offloaded)
			}
		case 0.99:
			accHigh = acc
			if res.Offloaded == 0 {
				t.Error("threshold 0.99 offloaded nothing")
			}
			if res.BytesMoved <= 0 {
				t.Error("offloading moved no bytes")
			}
		}
	}
	// The DDNN trade-off: offloading more must help accuracy here because
	// the cloud model is strictly better.
	if accHigh <= accLow {
		t.Errorf("offloading did not improve accuracy: %v -> %v", accLow, accHigh)
	}
}

func TestDDNNBadThreshold(t *testing.T) {
	d := &DDNN{Threshold: 1.5}
	if _, err := d.Infer(nil); !errors.Is(err, ErrBadThreshold) {
		t.Errorf("err = %v, want ErrBadThreshold", err)
	}
}

// TestDDNNLinkFailure covers the availability property: when the offload
// link is down, FallbackLocal keeps the edge's own answers; without it
// the failure propagates.
func TestDDNNLinkFailure(t *testing.T) {
	train, test := powerData(t, 73)
	edgeModel := trainedNet(t, "edge-net", train, 2, 6)
	cloudModel := trainedNet(t, "cloud-net", train, 15, 64)
	edge := manager(t, "eipkg", "rpi3")
	cld := manager(t, "cloudpkg-m", "cloud-gpu")
	if err := edge.Load(edgeModel, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := cld.Load(cloudModel, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	// A WAN that always fails (failure rate just under the validator cap).
	dead := netsim.FlakyLink{Link: netsim.WAN, FailureRate: 0.999999, Rand: rand.New(rand.NewSource(1))}

	// Edge-only answers for comparison.
	edgeRes, err := edge.Infer("edge-net", test.X)
	if err != nil {
		t.Fatal(err)
	}

	d := &DDNN{
		Edge: edge, EdgeModel: "edge-net",
		Cloud: cld, CloudName: "cloud-net",
		Link: dead, Threshold: 0.99, FallbackLocal: true,
	}
	res, err := d.Infer(test.X)
	if err != nil {
		t.Fatalf("fallback mode failed the batch: %v", err)
	}
	if !res.FellBack {
		t.Fatal("FellBack not reported although the link is down")
	}
	if res.Offloaded != 0 || res.BytesMoved != 0 {
		t.Fatalf("fallback result claims offload: %+v", res)
	}
	for i := range res.Classes {
		if res.Classes[i] != edgeRes.Classes[i] {
			t.Fatalf("fallback answer %d differs from the edge's own", i)
		}
	}

	d.FallbackLocal = false
	if _, err := d.Infer(test.X); !errors.Is(err, netsim.ErrLinkDown) {
		t.Fatalf("strict mode: err = %v, want ErrLinkDown", err)
	}
}

func TestPartitionProportionalToFLOPS(t *testing.T) {
	fast := manager(t, "eipkg", "jetson-tx2") // 3e11
	slow := manager(t, "eipkg", "rpi3")       // 2e9
	shares, err := Partition(100, []*pkgmgr.Manager{fast, slow})
	if err != nil {
		t.Fatal(err)
	}
	if shares[0]+shares[1] != 100 {
		t.Fatalf("shares %v do not sum to 100", shares)
	}
	if shares[0] < 90 {
		t.Errorf("fast peer got %d of 100, want ≥ 90 (150× faster)", shares[0])
	}
}

func TestPartitionRemainderAndEdgeCases(t *testing.T) {
	a := manager(t, "eipkg", "rpi4")
	b := manager(t, "eipkg", "rpi4")
	c := manager(t, "eipkg", "rpi4")
	shares, err := Partition(10, []*pkgmgr.Manager{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, s := range shares {
		sum += s
		if s < 3 || s > 4 {
			t.Errorf("equal peers got uneven share %v", shares)
		}
	}
	if sum != 10 {
		t.Errorf("shares %v sum to %d", shares, sum)
	}
	if _, err := Partition(5, nil); !errors.Is(err, ErrNoPeers) {
		t.Errorf("no peers: err = %v", err)
	}
	if _, err := Partition(-1, []*pkgmgr.Manager{a}); err == nil {
		t.Error("negative n should fail")
	}
	zero, err := Partition(0, []*pkgmgr.Manager{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range zero {
		if s != 0 {
			t.Errorf("Partition(0) = %v", zero)
		}
	}
}

func TestPartitionedInferMatchesSingleNode(t *testing.T) {
	train, test := powerData(t, 73)
	// Edge–edge partitioning pays a LAN RTT per peer, so it only wins on
	// compute-intensive work ("multiple edges work collaboratively to
	// accomplish a compute-intensive task") — use a wide model whose solo
	// latency dwarfs the 2 ms LAN RTT.
	rng := rand.New(rand.NewSource(7))
	model := nn.MustModel("power", []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: 1024},
		{Type: "relu"},
		{Type: "dense", In: 1024, Out: 1024},
		{Type: "relu"},
		{Type: "dense", In: 1024, Out: 5},
	})
	model.InitParams(rng)
	if _, _, err := nn.Train(model, train, nn.TrainConfig{Epochs: 3, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}

	solo := manager(t, "eipkg", "rpi3")
	if err := solo.Load(model, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	soloRes, err := solo.Infer("power", test.X)
	if err != nil {
		t.Fatal(err)
	}

	peers := []*pkgmgr.Manager{
		manager(t, "eipkg", "rpi3"),
		manager(t, "eipkg", "rpi3"),
		manager(t, "eipkg", "rpi3"),
	}
	for _, p := range peers {
		if err := p.Load(model, pkgmgr.LoadOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	partRes, err := PartitionedInfer(peers, "power", test.X, netsim.LAN)
	if err != nil {
		t.Fatal(err)
	}
	// Same model ⇒ identical predictions regardless of partitioning.
	for i := range soloRes.Classes {
		if soloRes.Classes[i] != partRes.Classes[i] {
			t.Fatalf("prediction %d differs: %d vs %d", i, soloRes.Classes[i], partRes.Classes[i])
		}
	}
	// The critical path across 3 equal peers must beat the solo run (the
	// edge–edge speedup claim); LAN cost is small at this payload size.
	if partRes.ModelLatency >= soloRes.ModelLatency {
		t.Errorf("partitioned latency %v not below solo %v", partRes.ModelLatency, soloRes.ModelLatency)
	}
	if partRes.BytesMoved <= 0 {
		t.Error("no LAN bytes recorded")
	}
}

func TestPartitionedInferNoPeers(t *testing.T) {
	if _, err := PartitionedInfer(nil, "x", nil, netsim.LAN); !errors.Is(err, ErrNoPeers) {
		t.Errorf("err = %v, want ErrNoPeers", err)
	}
}

func TestDistributedTrainImprovesGlobalModel(t *testing.T) {
	train, test := powerData(t, 74)
	// Start from a barely trained model.
	model := trainedNet(t, "power", train, 1, 24)
	base, err := nn.Accuracy(model, test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}

	peers := []*pkgmgr.Manager{
		manager(t, "eipkg", "rpi4"),
		manager(t, "eipkg", "rpi4"),
	}
	var shards []nn.Dataset
	half := train.Samples() / 2
	s1, err := train.Slice(0, half)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := train.Slice(half, train.Samples())
	if err != nil {
		t.Fatal(err)
	}
	shards = append(shards, s1, s2)
	for _, p := range peers {
		if err := p.Load(model, pkgmgr.LoadOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	meter := netsim.NewMeter()
	reports, err := DistributedTrain(peers, "power", shards, 3, 2, netsim.LAN, meter, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	if meter.Bytes("lan") == 0 {
		t.Error("no LAN traffic metered")
	}
	final, err := peers[0].Model("power")
	if err != nil {
		t.Fatal(err)
	}
	acc, err := nn.Accuracy(final, test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc <= base {
		t.Errorf("distributed training did not improve: %v -> %v", base, acc)
	}
	// Both peers must hold the same merged weights after the last round.
	other, err := peers[1].Model("power")
	if err != nil {
		t.Fatal(err)
	}
	if other.Params()[0].At(0, 0) != final.Params()[0].At(0, 0) {
		t.Error("peers diverged after final redeploy")
	}
}

func TestDistributedTrainValidation(t *testing.T) {
	if _, err := DistributedTrain(nil, "x", nil, 1, 1, netsim.LAN, nil, 1); !errors.Is(err, ErrNoPeers) {
		t.Errorf("no peers: err = %v", err)
	}
	p := manager(t, "eipkg", "rpi4")
	if _, err := DistributedTrain([]*pkgmgr.Manager{p}, "x", nil, 1, 1, netsim.LAN, nil, 1); err == nil {
		t.Error("shard count mismatch should fail")
	}
}

func TestDDNNLatencyAccounting(t *testing.T) {
	train, test := powerData(t, 75)
	edgeModel := trainedNet(t, "edge-net", train, 2, 6)
	cloudModel := trainedNet(t, "cloud-net", train, 10, 64)
	edge := manager(t, "eipkg", "rpi3")
	cld := manager(t, "cloudpkg-m", "cloud-gpu")
	if err := edge.Load(edgeModel, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := cld.Load(cloudModel, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	dLocal := &DDNN{Edge: edge, EdgeModel: "edge-net", Cloud: cld, CloudName: "cloud-net", Link: netsim.WAN, Threshold: 0}
	rLocal, err := dLocal.Infer(test.X)
	if err != nil {
		t.Fatal(err)
	}
	dOff := &DDNN{Edge: edge, EdgeModel: "edge-net", Cloud: cld, CloudName: "cloud-net", Link: netsim.WAN, Threshold: 1}
	rOff, err := dOff.Infer(test.X)
	if err != nil {
		t.Fatal(err)
	}
	// Full offload pays at least one WAN RTT more than pure edge.
	if rOff.ModelLatency < rLocal.ModelLatency+40*time.Millisecond {
		t.Errorf("offload latency %v vs local %v: WAN cost missing", rOff.ModelLatency, rLocal.ModelLatency)
	}
}
