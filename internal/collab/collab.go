// Package collab implements the two collaboration modes of Figure 2.
//
// Cloud–edge: model deployment from the cloud registry to an edge over the
// WAN (Dataflow 2), upload of retrained models back to the cloud followed
// by FedAvg aggregation (Dataflow 3 → global model), and DDNN-style [17]
// split inference with a confidence-based early exit on the edge.
//
// Edge–edge: FLOP-proportional partitioning of a compute-intensive batch
// across peers ("the task will be allocated according to the computing
// power"), and data-parallel distributed training rounds.
//
// All byte movements are charged to netsim links so the E2/E3 experiments
// can report both latency and bandwidth.
package collab

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"openei/internal/cloud"
	"openei/internal/netsim"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/tensor"
)

// Errors returned by the collaboration layer.
var (
	// ErrNoPeers is returned when partitioning across an empty peer set.
	ErrNoPeers = errors.New("collab: no peers")
	// ErrBadThreshold is returned for confidence thresholds outside [0,1].
	ErrBadThreshold = errors.New("collab: bad confidence threshold")
)

// DeployReport describes one cloud→edge model deployment.
type DeployReport struct {
	Model        string
	Version      int
	BytesMoved   int64
	TransferTime time.Duration
}

// Deploy fetches the named model from the registry, charges the transfer
// to link, and loads it into the edge's package manager — the paper's
// "models are usually trained on the cloud and then downloaded to the
// edge".
func Deploy(reg *cloud.Registry, edge *pkgmgr.Manager, modelName string, link netsim.Link, meter *netsim.Meter, opts pkgmgr.LoadOptions) (DeployReport, error) {
	blob, version, err := reg.Fetch(modelName)
	if err != nil {
		return DeployReport{}, err
	}
	var d time.Duration
	if meter != nil {
		d, err = meter.Record(link, int64(len(blob)))
	} else {
		d, err = link.Transfer(int64(len(blob)))
	}
	if err != nil {
		return DeployReport{}, err
	}
	m, err := nn.DecodeModel(blob)
	if err != nil {
		return DeployReport{}, err
	}
	if err := edge.Load(m, opts); err != nil {
		return DeployReport{}, err
	}
	return DeployReport{Model: modelName, Version: version, BytesMoved: int64(len(blob)), TransferTime: d}, nil
}

// UploadRetrained snapshots the edge's current weights for modelName,
// charges the WAN transfer, and publishes the artifact to the registry
// under uploadName (so per-edge personalizations do not clobber the global
// model). It returns the published version.
func UploadRetrained(edge *pkgmgr.Manager, reg *cloud.Registry, modelName, uploadName string, link netsim.Link, meter *netsim.Meter) (int, int64, error) {
	blob, err := edge.Snapshot(modelName)
	if err != nil {
		return 0, 0, err
	}
	if meter != nil {
		if _, err := meter.Record(link, int64(len(blob))); err != nil {
			return 0, 0, err
		}
	}
	v, err := reg.Publish(uploadName, blob)
	return v, int64(len(blob)), err
}

// DDNN is a distributed deep neural network across edge and cloud [17]:
// the edge runs a small model and exits early when its softmax confidence
// clears Threshold; otherwise the sample is offloaded over Link to the
// large cloud model.
type DDNN struct {
	Edge      *pkgmgr.Manager
	EdgeModel string
	Cloud     *pkgmgr.Manager
	CloudName string
	Link      netsim.Transferer
	Threshold float64
	// FallbackLocal keeps the edge's own (low-confidence) answers when
	// the offload link fails instead of failing the whole batch — the
	// availability property EI promises when the cloud is unreachable.
	FallbackLocal bool
}

// DDNNResult reports a split-inference batch.
type DDNNResult struct {
	Classes []int
	// Offloaded counts samples sent to the cloud.
	Offloaded int
	// BytesMoved is the WAN payload for offloaded samples.
	BytesMoved int64
	// ModelLatency is the modelled end-to-end latency of the batch: edge
	// compute + (transfer + cloud compute if any sample offloaded).
	ModelLatency time.Duration
	// FellBack reports that the offload link failed and the edge's own
	// answers were kept (only with FallbackLocal).
	FellBack bool
}

// Infer runs confidence-gated split inference over the batch x.
func (d *DDNN) Infer(x *tensor.Tensor) (DDNNResult, error) {
	if d.Threshold < 0 || d.Threshold > 1 {
		return DDNNResult{}, fmt.Errorf("%w: %v", ErrBadThreshold, d.Threshold)
	}
	edgeRes, err := d.Edge.Infer(d.EdgeModel, x)
	if err != nil {
		return DDNNResult{}, fmt.Errorf("collab: ddnn edge: %w", err)
	}
	batch := x.Dim(0)
	per := x.Len() / batch
	classes := append([]int(nil), edgeRes.Classes...)
	var offloadIdx []int
	for i, conf := range edgeRes.Confidences {
		if conf < d.Threshold {
			offloadIdx = append(offloadIdx, i)
		}
	}
	res := DDNNResult{Classes: classes, ModelLatency: edgeRes.ModelLatency}
	if len(offloadIdx) == 0 {
		return res, nil
	}
	// Gather offloaded samples into one cloud batch.
	shape := x.Shape()
	shape[0] = len(offloadIdx)
	sub := tensor.New(shape...)
	for i, j := range offloadIdx {
		copy(sub.Data()[i*per:(i+1)*per], x.Data()[j*per:(j+1)*per])
	}
	bytes := int64(4 * sub.Len())
	transfer, err := d.Link.Transfer(bytes)
	if err != nil {
		if d.FallbackLocal {
			res.FellBack = true
			return res, nil
		}
		return DDNNResult{}, fmt.Errorf("collab: ddnn offload: %w", err)
	}
	cloudRes, err := d.Cloud.Infer(d.CloudName, sub)
	if err != nil {
		return DDNNResult{}, fmt.Errorf("collab: ddnn cloud: %w", err)
	}
	for i, j := range offloadIdx {
		classes[j] = cloudRes.Classes[i]
	}
	res.Classes = classes
	res.Offloaded = len(offloadIdx)
	res.BytesMoved = bytes
	res.ModelLatency = edgeRes.ModelLatency + transfer + cloudRes.ModelLatency
	return res, nil
}

// Partition splits n work items across peers proportionally to their
// devices' FLOPS ("allocated according to the computing power"). Every
// peer receives at least zero items and the shares sum to n exactly.
func Partition(n int, peers []*pkgmgr.Manager) ([]int, error) {
	if len(peers) == 0 {
		return nil, ErrNoPeers
	}
	if n < 0 {
		return nil, fmt.Errorf("collab: negative work count %d", n)
	}
	var total float64
	for _, p := range peers {
		total += p.Device().FLOPS
	}
	shares := make([]int, len(peers))
	assigned := 0
	for i, p := range peers {
		shares[i] = int(float64(n) * p.Device().FLOPS / total)
		assigned += shares[i]
	}
	// Hand the integer-truncation remainder to peers in descending-FLOPS
	// order, one item each, wrapping around if needed.
	order := make([]int, len(peers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return peers[order[a]].Device().FLOPS > peers[order[b]].Device().FLOPS
	})
	for rem, k := n-assigned, 0; rem > 0; rem, k = rem-1, k+1 {
		shares[order[k%len(order)]]++
	}
	return shares, nil
}

// PartitionedResult reports an edge–edge partitioned inference.
type PartitionedResult struct {
	Classes []int
	// PeerLatency holds each peer's modelled latency for its share.
	PeerLatency []time.Duration
	// ModelLatency is the critical path: max peer latency + LAN scatter/
	// gather.
	ModelLatency time.Duration
	BytesMoved   int64
}

// PartitionedInfer splits the batch across peers (all of which must have
// modelName loaded), runs the shares, and merges results in order. The
// coordinator is peers[0]; shares for other peers are charged LAN
// transfers.
func PartitionedInfer(peers []*pkgmgr.Manager, modelName string, x *tensor.Tensor, link netsim.Link) (PartitionedResult, error) {
	if len(peers) == 0 {
		return PartitionedResult{}, ErrNoPeers
	}
	batch := x.Dim(0)
	shares, err := Partition(batch, peers)
	if err != nil {
		return PartitionedResult{}, err
	}
	per := x.Len() / batch
	res := PartitionedResult{Classes: make([]int, batch), PeerLatency: make([]time.Duration, len(peers))}
	var critical time.Duration
	lo := 0
	for i, share := range shares {
		if share == 0 {
			continue
		}
		hi := lo + share
		shape := x.Shape()
		shape[0] = share
		sub := tensor.New(shape...)
		copy(sub.Data(), x.Data()[lo*per:hi*per])
		r, err := peers[i].Infer(modelName, sub)
		if err != nil {
			return PartitionedResult{}, fmt.Errorf("collab: peer %d: %w", i, err)
		}
		copy(res.Classes[lo:hi], r.Classes)
		peerLat := r.ModelLatency
		if i != 0 {
			bytes := int64(4*sub.Len()) + int64(8*share) // inputs out, labels back
			transfer, err := link.Transfer(bytes)
			if err != nil {
				return PartitionedResult{}, err
			}
			peerLat += transfer
			res.BytesMoved += bytes
		}
		res.PeerLatency[i] = peerLat
		if peerLat > critical {
			critical = peerLat
		}
		lo = hi
	}
	res.ModelLatency = critical
	return res, nil
}

// RoundReport describes one distributed-training round.
type RoundReport struct {
	Round      int
	BytesMoved int64
	// Accuracies holds each peer's local training accuracy for the round.
	Accuracies []float64
}

// DistributedTrain runs FedAvg data-parallel training across edges: each
// round, every peer trains its local replica of modelName on its shard,
// the snapshots are aggregated (weighted by shard size), and the merged
// model is re-deployed to every peer over link. Peers must all have
// modelName loaded and a training-capable package.
func DistributedTrain(peers []*pkgmgr.Manager, modelName string, shards []nn.Dataset, rounds, epochsPerRound int, link netsim.Link, meter *netsim.Meter, seed int64) ([]RoundReport, error) {
	if len(peers) == 0 {
		return nil, ErrNoPeers
	}
	if len(shards) != len(peers) {
		return nil, fmt.Errorf("collab: %d shards for %d peers", len(shards), len(peers))
	}
	var reports []RoundReport
	for round := 0; round < rounds; round++ {
		rep := RoundReport{Round: round, Accuracies: make([]float64, len(peers))}
		blobs := make([][]byte, len(peers))
		weights := make([]float64, len(peers))
		for i, p := range peers {
			rng := rand.New(rand.NewSource(seed + int64(round*100+i)))
			_, acc, err := p.Train(modelName, shards[i], nn.TrainConfig{
				Epochs: epochsPerRound, BatchSize: 16, LR: 0.02, Momentum: 0.9, Rand: rng,
			})
			if err != nil {
				return nil, fmt.Errorf("collab: round %d peer %d: %w", round, i, err)
			}
			rep.Accuracies[i] = acc
			blob, err := p.Snapshot(modelName)
			if err != nil {
				return nil, err
			}
			blobs[i] = blob
			weights[i] = float64(shards[i].Samples())
			if i != 0 { // peer 0 is the aggregator
				if meter != nil {
					if _, err := meter.Record(link, int64(len(blob))); err != nil {
						return nil, err
					}
				}
				rep.BytesMoved += int64(len(blob))
			}
		}
		merged, err := cloud.Aggregate(blobs, weights)
		if err != nil {
			return nil, fmt.Errorf("collab: round %d aggregate: %w", round, err)
		}
		mergedModel, err := nn.DecodeModel(merged)
		if err != nil {
			return nil, err
		}
		for i, p := range peers {
			if i != 0 {
				if meter != nil {
					if _, err := meter.Record(link, int64(len(merged))); err != nil {
						return nil, err
					}
				}
				rep.BytesMoved += int64(len(merged))
			}
			if err := p.Load(mergedModel, pkgmgr.LoadOptions{}); err != nil {
				return nil, fmt.Errorf("collab: round %d redeploy peer %d: %w", round, i, err)
			}
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
