package collab

import (
	"fmt"
	"net/url"
	"sort"
	"sync"

	"openei/internal/apps"
	"openei/internal/libei"
)

// This file implements the A3-style [63] distributed collaborative
// execution of §V.A: an amber-alert-like query fans out to many OpenEI
// edges over their libei APIs, each edge runs detection on its own camera
// locally (video never leaves the node), and only sightings come back.

// Sighting is one edge's positive detection.
type Sighting struct {
	NodeID     string
	Label      string
	Confidence float64
}

// AmberQuery describes a fan-out detection request.
type AmberQuery struct {
	// TargetClass is the class index that counts as a sighting.
	TargetClass int
	// Video is the camera argument passed to each node (empty = node
	// default).
	Video string
	// MinConfidence filters weak detections; 0 keeps everything.
	MinConfidence float64
}

// AmberAlert queries every node's safety/detection algorithm concurrently
// and returns the sightings of the target class, sorted by descending
// confidence. Nodes that fail (offline, no camera data) are skipped and
// reported in errs, keyed by node status-reported ID or the client base
// URL when even /ei_status fails — mirroring A3's requirement to keep
// working when some edges are unreachable.
func AmberAlert(clients []*libei.Client, q AmberQuery) (sightings []Sighting, errs map[string]error) {
	errs = map[string]error{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *libei.Client) {
			defer wg.Done()
			nodeID := c.BaseURL
			status, err := c.Status()
			if err == nil {
				nodeID = status.NodeID
			}
			args := url.Values{}
			if q.Video != "" {
				args.Set("video", q.Video)
			}
			var det apps.Detection
			if err := c.CallAlgorithm("safety", "detection", args, &det); err != nil {
				mu.Lock()
				errs[nodeID] = fmt.Errorf("collab: amber query: %w", err)
				mu.Unlock()
				return
			}
			if det.Class != q.TargetClass || det.Confidence < q.MinConfidence {
				return
			}
			mu.Lock()
			sightings = append(sightings, Sighting{
				NodeID: nodeID, Label: det.Label, Confidence: det.Confidence,
			})
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	sort.Slice(sightings, func(i, j int) bool {
		if sightings[i].Confidence != sightings[j].Confidence {
			return sightings[i].Confidence > sightings[j].Confidence
		}
		return sightings[i].NodeID < sightings[j].NodeID
	})
	return sightings, errs
}
