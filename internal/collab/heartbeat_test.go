package collab

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"openei/internal/datastore"
	"openei/internal/libei"
	"openei/internal/runenv"
)

func TestPollHeartbeatsFeedsMonitor(t *testing.T) {
	// Two live peers over real HTTP, one dead address.
	mkPeer := func(id string) (*libei.Client, func()) {
		srv := libei.NewServer(id, datastore.New(4), nil)
		ts := httptest.NewServer(srv)
		return libei.NewClient(ts.URL), ts.Close
	}
	cA, closeA := mkPeer("edge-a")
	defer closeA()
	cB, closeB := mkPeer("edge-b")
	t.Cleanup(closeB)

	mon := runenv.NewMonitor(2 * time.Second)
	now := time.Unix(9000, 0)
	peers := map[string]*libei.Client{
		"a":    cA,
		"b":    cB,
		"dead": libei.NewClient("http://127.0.0.1:1"), // nothing listens here
	}
	alive, errs := PollHeartbeats(mon, peers, now)
	if len(alive) != 2 || alive[0] != "edge-a" || alive[1] != "edge-b" {
		t.Fatalf("alive = %v", alive)
	}
	if len(errs) != 1 || errs["dead"] == nil {
		t.Fatalf("errs = %v", errs)
	}
	if live := mon.Live(now); len(live) != 2 {
		t.Fatalf("monitor live = %v", live)
	}

	// edge-a's server dies: the next poll round only refreshes edge-b,
	// and after the timeout the monitor suspects edge-a.
	closeA()
	later := now.Add(3 * time.Second)
	alive, errs = PollHeartbeats(mon, peers, later)
	if len(alive) != 1 || alive[0] != "edge-b" {
		t.Fatalf("alive after failure = %v", alive)
	}
	if errs["a"] == nil {
		t.Fatalf("errs after failure = %v", errs)
	}
	if live := mon.Live(later); len(live) != 1 || live[0] != "edge-b" {
		t.Fatalf("monitor live after failure = %v", live)
	}
	if st, _ := mon.State("edge-a", later); st != runenv.NodeSuspect {
		t.Fatalf("edge-a state = %v, want suspect", st)
	}
}

func TestProbePeersReportsPerKeyOutcomes(t *testing.T) {
	srv := libei.NewServer("edge-x", datastore.New(4), nil)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	peers := map[string]*libei.Client{
		"x":    libei.NewClient(ts.URL),
		"dead": libei.NewClient("http://127.0.0.1:1"),
	}
	probes := ProbePeers(context.Background(), peers)
	if len(probes) != 2 {
		t.Fatalf("probes = %v", probes)
	}
	if p := probes["x"]; p.Err != nil || p.NodeID != "edge-x" || p.RTT <= 0 {
		t.Errorf("live probe = %+v", p)
	}
	if p := probes["dead"]; p.Err == nil || p.NodeID != "" {
		t.Errorf("dead probe = %+v", p)
	}
}
