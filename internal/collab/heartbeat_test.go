package collab

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"openei/internal/datastore"
	"openei/internal/libei"
	"openei/internal/runenv"
)

func TestPollHeartbeatsFeedsMonitor(t *testing.T) {
	// Two live peers over real HTTP, one dead address.
	mkPeer := func(id string) (*libei.Client, func()) {
		srv := libei.NewServer(id, datastore.New(4), nil)
		ts := httptest.NewServer(srv)
		return libei.NewClient(ts.URL), ts.Close
	}
	cA, closeA := mkPeer("edge-a")
	defer closeA()
	cB, closeB := mkPeer("edge-b")
	t.Cleanup(closeB)

	mon := runenv.NewMonitor(2 * time.Second)
	now := time.Unix(9000, 0)
	peers := map[string]*libei.Client{
		"a":    cA,
		"b":    cB,
		"dead": libei.NewClient("http://127.0.0.1:1"), // nothing listens here
	}
	alive, errs := PollHeartbeats(context.Background(), mon, peers, now)
	if len(alive) != 2 || alive[0] != "edge-a" || alive[1] != "edge-b" {
		t.Fatalf("alive = %v", alive)
	}
	if len(errs) != 1 || errs["dead"] == nil {
		t.Fatalf("errs = %v", errs)
	}
	if live := mon.Live(now); len(live) != 2 {
		t.Fatalf("monitor live = %v", live)
	}

	// edge-a's server dies: the next poll round only refreshes edge-b,
	// and after the timeout the monitor suspects edge-a.
	closeA()
	later := now.Add(3 * time.Second)
	alive, errs = PollHeartbeats(context.Background(), mon, peers, later)
	if len(alive) != 1 || alive[0] != "edge-b" {
		t.Fatalf("alive after failure = %v", alive)
	}
	if errs["a"] == nil {
		t.Fatalf("errs after failure = %v", errs)
	}
	if live := mon.Live(later); len(live) != 1 || live[0] != "edge-b" {
		t.Fatalf("monitor live after failure = %v", live)
	}
	if st, _ := mon.State("edge-a", later); st != runenv.NodeSuspect {
		t.Fatalf("edge-a state = %v, want suspect", st)
	}
}

// TestPollHeartbeatsBoundedByContext pins the regression the cluster
// gossip loop depends on: a peer that accepts the connection but never
// answers must not stall the poll past the caller's deadline.
func TestPollHeartbeatsBoundedByContext(t *testing.T) {
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hold the request open until the client gives up
	}))
	t.Cleanup(stuck.Close)
	live := libei.NewServer("edge-live", datastore.New(4), nil)
	liveTS := httptest.NewServer(live)
	t.Cleanup(liveTS.Close)

	mon := runenv.NewMonitor(2 * time.Second)
	peers := map[string]*libei.Client{
		"stuck": libei.NewClient(stuck.URL),
		"live":  libei.NewClient(liveTS.URL),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	alive, errs := PollHeartbeats(ctx, mon, peers, time.Unix(7000, 0))
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("poll took %v despite a 150ms probe deadline", elapsed)
	}
	if len(alive) != 1 || alive[0] != "edge-live" {
		t.Fatalf("alive = %v, want just edge-live", alive)
	}
	if errs["stuck"] == nil {
		t.Fatalf("stuck peer reported no error: %v", errs)
	}
}

func TestProbePeersReportsPerKeyOutcomes(t *testing.T) {
	srv := libei.NewServer("edge-x", datastore.New(4), nil)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	peers := map[string]*libei.Client{
		"x":    libei.NewClient(ts.URL),
		"dead": libei.NewClient("http://127.0.0.1:1"),
	}
	probes := ProbePeers(context.Background(), peers)
	if len(probes) != 2 {
		t.Fatalf("probes = %v", probes)
	}
	if p := probes["x"]; p.Err != nil || p.NodeID != "edge-x" || p.RTT <= 0 {
		t.Errorf("live probe = %+v", p)
	}
	if p := probes["dead"]; p.Err == nil || p.NodeID != "" {
		t.Errorf("dead probe = %+v", p)
	}
}
