package collab

import (
	"context"
	"sort"
	"sync"
	"time"

	"openei/internal/libei"
	"openei/internal/runenv"
)

// This file closes the loop between libei and the §IV.C failure
// detector: a peer's liveness signal is its own REST API (/ei_status),
// so "heartbeats" need no extra protocol — an edge that answers the
// status probe is alive, exactly the availability property the open
// problem asks for under "dynamic changes in topology".

// Probe is one peer's status-probe outcome.
type Probe struct {
	// NodeID is the peer's self-reported identity (empty on failure).
	NodeID string
	// Status is the peer's full /ei_status answer: identity plus the
	// placement facts (loaded-model set, capacity) cluster membership
	// gossips — one probe is both a heartbeat and an advertisement.
	Status libei.Status
	// RTT is the probe's round-trip time (set even on failure: it is how
	// long the failure took to detect).
	RTT time.Duration
	// Err is nil when the peer answered.
	Err error
}

// ProbePeers probes every peer's /ei_status concurrently and returns the
// outcome per peers-map key. It is the transport half of the heartbeat
// loop: callers decide how to record liveness — PollHeartbeats feeds a
// runenv.Monitor keyed by reported node ID, while the fleet gateway keys
// its detector by node URL so health tracks the address it routes to.
func ProbePeers(ctx context.Context, peers map[string]*libei.Client) map[string]Probe {
	var (
		mu  sync.Mutex
		out = make(map[string]Probe, len(peers))
		wg  sync.WaitGroup
	)
	for name, client := range peers {
		wg.Add(1)
		go func(name string, client *libei.Client) {
			defer wg.Done()
			start := time.Now()
			st, err := client.StatusCtx(ctx)
			p := Probe{RTT: time.Since(start), Err: err}
			if err == nil {
				p.NodeID = st.NodeID
				p.Status = st
			}
			mu.Lock()
			out[name] = p
			mu.Unlock()
		}(name, client)
	}
	wg.Wait()
	return out
}

// PollHeartbeats probes every peer's /ei_status concurrently and records
// a heartbeat at `now` for each that answers. It returns the node IDs
// that responded (sorted) and the per-peer errors for those that did not
// (keyed by the peers map key). Callers loop this at their chosen
// period; time is injected so tests are deterministic. The context
// bounds every probe — give it a deadline shorter than the poll period
// so one stuck peer cannot stall the loop past its next round.
func PollHeartbeats(ctx context.Context, mon *runenv.Monitor, peers map[string]*libei.Client, now time.Time) ([]string, map[string]error) {
	probes := ProbePeers(ctx, peers)
	var alive []string
	errs := map[string]error{}
	for name, p := range probes {
		if p.Err != nil {
			errs[name] = p.Err
			continue
		}
		id := p.NodeID
		if id == "" {
			id = name
		}
		mon.Heartbeat(id, now)
		alive = append(alive, id)
	}
	sort.Strings(alive)
	return alive, errs
}
