package collab

import (
	"sort"
	"sync"
	"time"

	"openei/internal/libei"
	"openei/internal/runenv"
)

// This file closes the loop between libei and the §IV.C failure
// detector: a peer's liveness signal is its own REST API (/ei_status),
// so "heartbeats" need no extra protocol — an edge that answers the
// status probe is alive, exactly the availability property the open
// problem asks for under "dynamic changes in topology".

// PollHeartbeats probes every peer's /ei_status concurrently and records
// a heartbeat at `now` for each that answers. It returns the node IDs
// that responded (sorted) and the per-peer errors for those that did not
// (keyed by the peers map key). Callers loop this at their chosen
// period; time is injected so tests are deterministic.
func PollHeartbeats(mon *runenv.Monitor, peers map[string]*libei.Client, now time.Time) ([]string, map[string]error) {
	var (
		mu    sync.Mutex
		alive []string
		errs  = map[string]error{}
		wg    sync.WaitGroup
	)
	for name, client := range peers {
		wg.Add(1)
		go func(name string, client *libei.Client) {
			defer wg.Done()
			st, err := client.Status()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[name] = err
				return
			}
			id := st.NodeID
			if id == "" {
				id = name
			}
			mon.Heartbeat(id, now)
			alive = append(alive, id)
		}(name, client)
	}
	wg.Wait()
	sort.Strings(alive)
	return alive, errs
}
