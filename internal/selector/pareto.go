package selector

import (
	"sort"

	"openei/internal/alem"
)

// Pareto returns the Pareto-optimal subset of choices over the four ALEM
// dimensions (maximize Accuracy; minimize Latency, Energy, Memory): a
// choice survives iff no other choice is at least as good in every
// dimension and strictly better in one. The paper frames selection as
// picking one optimum under constraints (Equation 1); the frontier is the
// set of *all* combinations any constraint setting could ever pick, which
// is what a deployment dashboard actually wants to show.
//
// The result is sorted by ascending latency. Complexity is O(n²), fine for
// the ≤ few-thousand-point spaces Figure 5 describes.
func Pareto(choices []Choice) []Choice {
	var front []Choice
	for i, c := range choices {
		dominated := false
		for j, d := range choices {
			if i == j {
				continue
			}
			if dominates(d.ALEM, c.ALEM) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].ALEM.Latency != front[j].ALEM.Latency {
			return front[i].ALEM.Latency < front[j].ALEM.Latency
		}
		return front[i].ALEM.Accuracy > front[j].ALEM.Accuracy
	})
	return front
}

// dominates reports whether a is at least as good as b in all four ALEM
// dimensions and strictly better in at least one.
func dominates(a, b alem.ALEM) bool {
	geq := a.Accuracy >= b.Accuracy &&
		a.Latency <= b.Latency &&
		a.Energy <= b.Energy &&
		a.Memory <= b.Memory
	if !geq {
		return false
	}
	return a.Accuracy > b.Accuracy ||
		a.Latency < b.Latency ||
		a.Energy < b.Energy ||
		a.Memory < b.Memory
}
