package selector

import (
	"sort"

	"openei/internal/alem"
)

// Pareto returns the Pareto-optimal subset of choices over the four ALEM
// dimensions (maximize Accuracy; minimize Latency, Energy, Memory): a
// choice survives iff no other choice is at least as good in every
// dimension and strictly better in one. The paper frames selection as
// picking one optimum under constraints (Equation 1); the frontier is the
// set of *all* combinations any constraint setting could ever pick, which
// is what both the deployment dashboard and the autopilot's tier ladder
// want.
//
// Implementation: a sort-based sweep. Choices are sorted by ascending
// latency (ties: accuracy desc, energy asc, memory asc), so a choice can
// only ever be dominated by one that sorts before it — a later choice has
// strictly higher latency, or ties every tie-break key and therefore
// cannot strictly beat it anywhere. One pass then tests each choice
// against the frontier built so far instead of against all n points:
// O(n·log n + n·f) for a frontier of size f, versus the old O(n²) scan —
// on a 10k-point space with the typical small frontier that is two to
// three orders of magnitude fewer dominance checks (see BenchmarkPareto).
//
// The result is sorted by ascending latency. Exact duplicates are all
// kept, matching the pairwise definition (neither strictly beats the
// other).
func Pareto(choices []Choice) []Choice {
	if len(choices) == 0 {
		return nil
	}
	sorted := make([]Choice, len(choices))
	copy(sorted, choices)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i].ALEM, sorted[j].ALEM
		if a.Latency != b.Latency {
			return a.Latency < b.Latency
		}
		if a.Accuracy != b.Accuracy {
			return a.Accuracy > b.Accuracy
		}
		if a.Energy != b.Energy {
			return a.Energy < b.Energy
		}
		return a.Memory < b.Memory
	})
	var front []Choice
	for _, c := range sorted {
		dominated := false
		for _, f := range front {
			if dominates(f.ALEM, c.ALEM) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	return front
}

// dominates reports whether a is at least as good as b in all four ALEM
// dimensions and strictly better in at least one.
func dominates(a, b alem.ALEM) bool {
	geq := a.Accuracy >= b.Accuracy &&
		a.Latency <= b.Latency &&
		a.Energy <= b.Energy &&
		a.Memory <= b.Memory
	if !geq {
		return false
	}
	return a.Accuracy > b.Accuracy ||
		a.Latency < b.Latency ||
		a.Energy < b.Energy ||
		a.Memory < b.Memory
}

// paretoNaive is the original O(n²) all-pairs scan, kept as the reference
// implementation the sweep is property-tested against.
func paretoNaive(choices []Choice) []Choice {
	var front []Choice
	for i, c := range choices {
		dominated := false
		for j, d := range choices {
			if i == j {
				continue
			}
			if dominates(d.ALEM, c.ALEM) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].ALEM.Latency != front[j].ALEM.Latency {
			return front[i].ALEM.Latency < front[j].ALEM.Latency
		}
		return front[i].ALEM.Accuracy > front[j].ALEM.Accuracy
	})
	return front
}
