// Package selector implements the paper's model selector (§III.C): the
// selecting algorithm SA that solves Equation 1,
//
//	argmin_{m ∈ Models} L   s.t.  A ≥ Areq, E ≤ Epro, M ≤ Mpro
//
// over the three-dimensional space of Figure 5 (models × packages × edge
// hardware), with the objective axis configurable exactly as the paper
// describes ("if users pay more attention to Accuracy, the optimization
// target will be replaced by maximize A and the constraints are L, E, M").
//
// Three strategies are provided so the E5 ablation can compare them:
//
//   - Exhaustive: enumerate every feasible combination (the reference SA).
//   - Greedy: a naive baseline that picks the most accurate model that
//     fits, ignoring the joint package/latency structure.
//   - QLearner: a reinforcement-learning selector (the paper: "deep
//     reinforcement learning will be leveraged to find the optimal
//     combination"), implemented as an ε-greedy bandit over combinations.
package selector

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"openei/internal/alem"
	"openei/internal/hardware"
	"openei/internal/nn"
)

// ErrInfeasible is returned when no combination satisfies the constraints.
var ErrInfeasible = errors.New("selector: no feasible combination")

// Objective selects which ALEM dimension is optimized; the other
// dimensions act as constraints.
type Objective int

// Objectives, mirroring §III.C.
const (
	MinLatency Objective = iota + 1
	MaxAccuracy
	MinEnergy
	MinMemory
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MinLatency:
		return "min-latency"
	case MaxAccuracy:
		return "max-accuracy"
	case MinEnergy:
		return "min-energy"
	case MinMemory:
		return "min-memory"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// Requirements is the user's request: the objective plus the constraint
// thresholds of Equation 1. Zero values mean "unconstrained" except
// MinAccuracy, which defaults to 0 (no accuracy floor).
type Requirements struct {
	Objective   Objective
	MinAccuracy float64       // Areq
	MaxLatency  time.Duration // latency budget when it is a constraint
	MaxEnergy   float64       // Epro, joules per inference
	MaxMemory   int64         // Mpro, bytes; 0 = the device's capacity
}

// Candidate is one model artifact to consider: a trained model and
// whether to evaluate its int8-quantized or int4 nibble-packed variant.
type Candidate struct {
	Name      string
	Model     *nn.Model
	Quantized bool
	Int4      bool
}

// variant maps the candidate's flags to the profiler's variant.
func (c Candidate) variant() alem.Variant {
	return alem.Variant{Quantized: c.Quantized, Int4: c.Int4}
}

// Variants expands trained models into float and (optionally) quantized
// candidates — the int8 artifact and the ⅛-weight-bytes int4 artifact
// both enter the search space when the package stack supports quantized
// kernels, so the tier ladder can trade a little more accuracy for
// another halving of resident weight bytes.
func Variants(models map[string]*nn.Model, includeQuantized bool) []Candidate {
	var out []Candidate
	for name, m := range models {
		out = append(out, Candidate{Name: name, Model: m})
		if includeQuantized {
			out = append(out, Candidate{Name: name, Model: m, Quantized: true})
			out = append(out, Candidate{Name: name, Model: m, Quantized: true, Int4: true})
		}
	}
	return out
}

// Choice is one point in the 3-D space with its measured tuple.
type Choice struct {
	ModelName string
	Quantized bool
	Int4      bool
	Package   alem.Package
	Device    hardware.Device
	ALEM      alem.ALEM
}

// String implements fmt.Stringer.
func (c Choice) String() string {
	q := ""
	switch {
	case c.Int4:
		q = "+int4"
	case c.Quantized:
		q = "+int8"
	}
	return fmt.Sprintf("%s%s on %s/%s %v", c.ModelName, q, c.Package.Name, c.Device.Name, c.ALEM)
}

// feasible checks Equation 1's constraints for the given objective (the
// optimized dimension is never also a constraint).
func feasible(a alem.ALEM, dev hardware.Device, req Requirements) bool {
	maxMem := req.MaxMemory
	if maxMem == 0 || maxMem > dev.MemBytes {
		maxMem = dev.MemBytes
	}
	if a.Memory > maxMem && req.Objective != MinMemory {
		return false
	}
	if req.Objective != MaxAccuracy && a.Accuracy < req.MinAccuracy {
		return false
	}
	if req.Objective != MinLatency && req.MaxLatency > 0 && a.Latency > req.MaxLatency {
		return false
	}
	if req.Objective != MinEnergy && req.MaxEnergy > 0 && a.Energy > req.MaxEnergy {
		return false
	}
	// Even when optimizing memory the model must physically fit.
	if req.Objective == MinMemory && a.Memory > dev.MemBytes {
		return false
	}
	return true
}

// better reports whether a improves on best under the objective.
func better(a, best alem.ALEM, o Objective) bool {
	switch o {
	case MaxAccuracy:
		return a.Accuracy > best.Accuracy
	case MinEnergy:
		return a.Energy < best.Energy
	case MinMemory:
		return a.Memory < best.Memory
	default:
		return a.Latency < best.Latency
	}
}

// enumerate profiles every combination, returning feasible choices.
func enumerate(cands []Candidate, pkgs []alem.Package, devs []hardware.Device, req Requirements, prof *alem.Profiler) ([]Choice, error) {
	var out []Choice
	for _, c := range cands {
		for _, p := range pkgs {
			for _, d := range devs {
				v := c.variant()
				if !prof.Fits(c.Model, p, d, v) {
					continue
				}
				a, err := prof.Profile(c.Model, p, d, v)
				if err != nil {
					return nil, fmt.Errorf("profile %s/%s/%s: %w", c.Name, p.Name, d.Name, err)
				}
				if !feasible(a, d, req) {
					continue
				}
				out = append(out, Choice{
					ModelName: c.Name, Quantized: c.Quantized, Int4: c.Int4,
					Package: p, Device: d, ALEM: a,
				})
			}
		}
	}
	return out, nil
}

// Exhaustive is the reference SA: full enumeration with constraint
// filtering, returning the optimum under the objective.
func Exhaustive(cands []Candidate, pkgs []alem.Package, devs []hardware.Device, req Requirements, prof *alem.Profiler) (Choice, error) {
	feas, err := enumerate(cands, pkgs, devs, req, prof)
	if err != nil {
		return Choice{}, err
	}
	if len(feas) == 0 {
		return Choice{}, fmt.Errorf("%w: %d candidates × %d packages × %d devices under %+v",
			ErrInfeasible, len(cands), len(pkgs), len(devs), req)
	}
	best := feas[0]
	for _, c := range feas[1:] {
		if better(c.ALEM, best.ALEM, req.Objective) {
			best = c
		}
	}
	return best, nil
}

// Greedy is the naive baseline: choose the highest-accuracy model that fits
// the first device it fits on, with the first package that runs it. It
// satisfies the accuracy constraint but ignores the joint optimization —
// the strawman the E5 ablation measures SA against.
func Greedy(cands []Candidate, pkgs []alem.Package, devs []hardware.Device, req Requirements, prof *alem.Profiler) (Choice, error) {
	var best *Choice
	var bestAcc float64 = -1
	for _, c := range cands {
		for _, p := range pkgs {
			for _, d := range devs {
				v := c.variant()
				if !prof.Fits(c.Model, p, d, v) {
					continue
				}
				a, err := prof.Profile(c.Model, p, d, v)
				if err != nil {
					return Choice{}, err
				}
				if a.Accuracy < req.MinAccuracy {
					continue
				}
				if a.Accuracy > bestAcc {
					bestAcc = a.Accuracy
					best = &Choice{ModelName: c.Name, Quantized: c.Quantized, Int4: c.Int4, Package: p, Device: d, ALEM: a}
				}
			}
		}
	}
	if best == nil {
		return Choice{}, fmt.Errorf("%w (greedy)", ErrInfeasible)
	}
	return *best, nil
}

// QLearner is an ε-greedy bandit over the combination space: each arm is a
// (candidate, package, device) triple, the reward is the normalized
// objective score with a hard penalty for constraint violations. With
// enough episodes it converges to the exhaustive optimum; with few
// episodes it trades optimality for profiling cost — the trade-off the E5
// ablation quantifies.
type QLearner struct {
	Episodes int
	Epsilon  float64
	Rand     *rand.Rand
}

// Select runs the bandit and returns its best arm.
func (q *QLearner) Select(cands []Candidate, pkgs []alem.Package, devs []hardware.Device, req Requirements, prof *alem.Profiler) (Choice, error) {
	if q.Rand == nil {
		return Choice{}, errors.New("selector: QLearner needs a random source")
	}
	episodes := q.Episodes
	if episodes <= 0 {
		episodes = 200
	}
	eps := q.Epsilon
	if eps <= 0 {
		eps = 0.2
	}
	type arm struct {
		c Candidate
		p alem.Package
		d hardware.Device
	}
	var arms []arm
	for _, c := range cands {
		for _, p := range pkgs {
			for _, d := range devs {
				arms = append(arms, arm{c, p, d})
			}
		}
	}
	if len(arms) == 0 {
		return Choice{}, fmt.Errorf("%w: empty space", ErrInfeasible)
	}
	qv := make([]float64, len(arms))
	n := make([]int, len(arms))
	pull := func(i int) (float64, *Choice, error) {
		a := arms[i]
		v := a.c.variant()
		if !prof.Fits(a.c.Model, a.p, a.d, v) {
			return -1, nil, nil
		}
		al, err := prof.Profile(a.c.Model, a.p, a.d, v)
		if err != nil {
			return 0, nil, err
		}
		if !feasible(al, a.d, req) {
			return -1, nil, nil
		}
		ch := Choice{ModelName: a.c.Name, Quantized: a.c.Quantized, Int4: a.c.Int4, Package: a.p, Device: a.d, ALEM: al}
		return reward(al, req.Objective), &ch, nil
	}
	var best *Choice
	var bestR = -2.0
	for ep := 0; ep < episodes; ep++ {
		var i int
		if q.Rand.Float64() < eps {
			i = q.Rand.Intn(len(arms))
		} else {
			i = argmaxQ(qv, n, q.Rand)
		}
		r, ch, err := pull(i)
		if err != nil {
			return Choice{}, err
		}
		n[i]++
		qv[i] += (r - qv[i]) / float64(n[i])
		if ch != nil && r > bestR {
			bestR = r
			best = ch
		}
	}
	if best == nil {
		return Choice{}, fmt.Errorf("%w (q-learning, %d episodes)", ErrInfeasible, episodes)
	}
	return *best, nil
}

// reward maps an ALEM tuple to a score in (0, 1] for the objective.
func reward(a alem.ALEM, o Objective) float64 {
	switch o {
	case MaxAccuracy:
		return a.Accuracy
	case MinEnergy:
		return 1 / (1 + a.Energy*1000) // milli-joule scale
	case MinMemory:
		return 1 / (1 + float64(a.Memory)/(1<<20))
	default:
		return 1 / (1 + float64(a.Latency)/float64(time.Millisecond))
	}
}

func argmaxQ(qv []float64, n []int, rng *rand.Rand) int {
	best, bi := -1e18, 0
	for i := range qv {
		v := qv[i]
		if n[i] == 0 {
			v = 1e9 - float64(rng.Intn(1000)) // optimistic init: explore unseen arms first
		}
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Table enumerates the full feasible space (no constraints applied beyond
// hardware fit) — the data behind the Figure 5 / E5 ALEM table.
func Table(cands []Candidate, pkgs []alem.Package, devs []hardware.Device, prof *alem.Profiler) ([]Choice, error) {
	return enumerate(cands, pkgs, devs, Requirements{Objective: MinLatency}, prof)
}
