package selector

import (
	"testing"
	"testing/quick"
	"time"

	"openei/internal/alem"
)

func mk(acc float64, lat time.Duration, energy float64, mem int64) Choice {
	return Choice{ALEM: alem.ALEM{Accuracy: acc, Latency: lat, Energy: energy, Memory: mem}}
}

func TestParetoDropsDominated(t *testing.T) {
	a := mk(0.9, 10*time.Millisecond, 1, 100) // dominated by b
	b := mk(0.95, 5*time.Millisecond, 0.5, 50)
	c := mk(0.99, 50*time.Millisecond, 2, 200) // best accuracy, worst cost
	front := Pareto([]Choice{a, b, c})
	if len(front) != 2 {
		t.Fatalf("frontier size = %d, want 2 (got %v)", len(front), front)
	}
	// Sorted by latency: b then c.
	if front[0].ALEM.Accuracy != 0.95 || front[1].ALEM.Accuracy != 0.99 {
		t.Errorf("frontier = %v", front)
	}
}

func TestParetoKeepsIncomparable(t *testing.T) {
	// Two points trading accuracy against latency: both survive.
	a := mk(0.9, 1*time.Millisecond, 1, 100)
	b := mk(0.95, 2*time.Millisecond, 1, 100)
	front := Pareto([]Choice{a, b})
	if len(front) != 2 {
		t.Fatalf("frontier size = %d, want 2", len(front))
	}
}

func TestParetoIdenticalPointsAllSurvive(t *testing.T) {
	a := mk(0.9, time.Millisecond, 1, 100)
	front := Pareto([]Choice{a, a, a})
	if len(front) != 3 {
		t.Errorf("identical points: frontier = %d, want 3 (none strictly dominates)", len(front))
	}
}

func TestParetoDuplicatedDominatedPointStaysOut(t *testing.T) {
	// Duplicating a dominated point must not let either copy survive:
	// domination is decided against the dominating point, not the twin.
	best := mk(0.99, time.Millisecond, 0.5, 50)
	worse := mk(0.9, 2*time.Millisecond, 1, 100)
	front := Pareto([]Choice{worse, best, worse})
	if len(front) != 1 || front[0].ALEM != best.ALEM {
		t.Errorf("frontier = %v, want only the dominating point", front)
	}
}

func TestParetoTiedLatencySortsByAccuracy(t *testing.T) {
	// Incomparable points tied on latency: the frontier keeps both and
	// orders the more accurate one first.
	hiAcc := mk(0.95, time.Millisecond, 2, 100)
	loAcc := mk(0.90, time.Millisecond, 1, 100)
	front := Pareto([]Choice{loAcc, hiAcc})
	if len(front) != 2 {
		t.Fatalf("frontier size = %d, want 2", len(front))
	}
	if front[0].ALEM.Accuracy != 0.95 || front[1].ALEM.Accuracy != 0.90 {
		t.Errorf("tie-break order = %v, want accuracy-descending at equal latency", front)
	}
}

func TestParetoTiedInThreeDimensions(t *testing.T) {
	// a beats b only on memory, everything else tied: a strictly
	// dominates, b drops.
	a := mk(0.9, time.Millisecond, 1, 50)
	b := mk(0.9, time.Millisecond, 1, 100)
	front := Pareto([]Choice{a, b})
	if len(front) != 1 || front[0].ALEM.Memory != 50 {
		t.Errorf("frontier = %v, want only the lower-memory point", front)
	}
}

func TestParetoEmpty(t *testing.T) {
	if got := Pareto(nil); got != nil {
		t.Errorf("Pareto(nil) = %v", got)
	}
	if got := Pareto([]Choice{}); got != nil {
		t.Errorf("Pareto(empty) = %v, want nil frontier", got)
	}
}

func TestParetoSinglePoint(t *testing.T) {
	a := mk(0.5, time.Second, 10, 1000)
	front := Pareto([]Choice{a})
	if len(front) != 1 || front[0].ALEM != a.ALEM {
		t.Errorf("single point frontier = %v", front)
	}
}

// Properties: the frontier is non-empty for non-empty input, contains no
// dominated point, and every dropped point is dominated by some frontier
// point.
func TestParetoProperties(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		var cs []Choice
		for _, v := range raw {
			cs = append(cs, mk(
				float64(v%100)/100,
				time.Duration(1+(v>>8)%1000)*time.Microsecond,
				float64(1+(v>>16)%50),
				int64(1+(v>>24)%200),
			))
		}
		front := Pareto(cs)
		if len(front) == 0 {
			return false
		}
		inFront := func(c Choice) bool {
			for _, f := range front {
				if f.ALEM == c.ALEM {
					return true
				}
			}
			return false
		}
		for i, c := range front {
			for j, d := range front {
				if i != j && dominates(d.ALEM, c.ALEM) {
					return false // dominated point inside the frontier
				}
			}
		}
		for _, c := range cs {
			if inFront(c) {
				continue
			}
			found := false
			for _, d := range cs {
				if dominates(d.ALEM, c.ALEM) {
					found = true
					break
				}
			}
			if !found {
				return false // dropped but not dominated by anything
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParetoOnRealSpace(t *testing.T) {
	f := newFixture(t)
	space, err := Table(f.cands, f.pkgs, f.devs, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	front := Pareto(space)
	if len(front) == 0 || len(front) >= len(space) {
		t.Fatalf("frontier %d of %d points", len(front), len(space))
	}
	// For every objective, some frontier point must achieve the optimal
	// objective value (Exhaustive breaks ties arbitrarily, so its exact
	// tuple may be dominated by an equal-objective, cheaper point — but
	// the optimal *value* is always represented on the frontier).
	for _, obj := range []Objective{MinLatency, MaxAccuracy, MinEnergy, MinMemory} {
		choice, err := Exhaustive(f.cands, f.pkgs, f.devs, Requirements{Objective: obj}, f.prof)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, fc := range front {
			switch obj {
			case MaxAccuracy:
				found = fc.ALEM.Accuracy >= choice.ALEM.Accuracy
			case MinEnergy:
				found = fc.ALEM.Energy <= choice.ALEM.Energy
			case MinMemory:
				found = fc.ALEM.Memory <= choice.ALEM.Memory
			default:
				found = fc.ALEM.Latency <= choice.ALEM.Latency
			}
			if found {
				break
			}
		}
		if !found {
			t.Errorf("%v optimal value %v not represented on the Pareto frontier", obj, choice.ALEM)
		}
	}
}
