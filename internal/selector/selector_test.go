package selector

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/dataset"
	"openei/internal/hardware"
	"openei/internal/nn"
)

// fixture trains two deliberately different models — a heavy accurate one
// and a light less-accurate one — so every objective has a distinct winner.
type fixture struct {
	cands []Candidate
	pkgs  []alem.Package
	devs  []hardware.Device
	prof  *alem.Profiler
}

func newFixture(t *testing.T) fixture {
	t.Helper()
	cfg := dataset.PowerConfig{Samples: 500, Window: 32, Noise: 0.15, Seed: 31}
	train, test, err := dataset.Power(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	heavy := nn.MustModel("heavy", []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: 128},
		{Type: "relu"},
		{Type: "dense", In: 128, Out: 64},
		{Type: "relu"},
		{Type: "dense", In: 64, Out: 5},
	})
	heavy.InitParams(rng)
	if _, _, err := nn.Train(heavy, train, nn.TrainConfig{Epochs: 15, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	light := nn.MustModel("light", []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: 6},
		{Type: "relu"},
		{Type: "dense", In: 6, Out: 5},
	})
	light.InitParams(rng)
	if _, _, err := nn.Train(light, train, nn.TrainConfig{Epochs: 3, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	devs := []hardware.Device{}
	for _, name := range []string{"rpi3", "jetson-tx2"} {
		d, err := hardware.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
	}
	return fixture{
		cands: Variants(map[string]*nn.Model{"heavy": heavy, "light": light}, true),
		pkgs:  alem.Packages(),
		devs:  devs,
		prof:  alem.NewProfiler(test),
	}
}

func TestExhaustiveMinLatencyPicksLightFastCombo(t *testing.T) {
	f := newFixture(t)
	choice, err := Exhaustive(f.cands, f.pkgs, f.devs, Requirements{Objective: MinLatency}, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained min-latency must pick the light model on the fastest
	// device — verify by checking no enumerated combo is faster.
	table, err := Table(f.cands, f.pkgs, f.devs, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range table {
		if c.ALEM.Latency < choice.ALEM.Latency {
			t.Errorf("found faster combo %v than chosen %v", c, choice)
		}
	}
	if choice.ModelName != "light" {
		t.Errorf("min-latency picked %s, want light", choice.ModelName)
	}
}

func TestExhaustiveAccuracyConstraintForcesHeavyModel(t *testing.T) {
	f := newFixture(t)
	// Find the two models' accuracies first.
	heavyA, err := f.prof.Profile(modelOf(f, "heavy"), f.pkgs[0], f.devs[0], alem.Variant{})
	if err != nil {
		t.Fatal(err)
	}
	lightA, err := f.prof.Profile(modelOf(f, "light"), f.pkgs[0], f.devs[0], alem.Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if heavyA.Accuracy <= lightA.Accuracy {
		t.Skipf("fixture degenerate: heavy %.3f not above light %.3f", heavyA.Accuracy, lightA.Accuracy)
	}
	mid := (heavyA.Accuracy + lightA.Accuracy) / 2
	choice, err := Exhaustive(f.cands, f.pkgs, f.devs, Requirements{Objective: MinLatency, MinAccuracy: mid}, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	if choice.ModelName != "heavy" {
		t.Errorf("with Areq=%.3f picked %s (acc %.3f), want heavy", mid, choice.ModelName, choice.ALEM.Accuracy)
	}
	if choice.ALEM.Accuracy < mid {
		t.Errorf("constraint violated: accuracy %.3f < %.3f", choice.ALEM.Accuracy, mid)
	}
}

func modelOf(f fixture, name string) *nn.Model {
	for _, c := range f.cands {
		if c.Name == name && !c.Quantized {
			return c.Model
		}
	}
	return nil
}

func TestExhaustiveMaxAccuracyObjective(t *testing.T) {
	f := newFixture(t)
	choice, err := Exhaustive(f.cands, f.pkgs, f.devs, Requirements{Objective: MaxAccuracy}, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	if choice.ModelName != "heavy" {
		t.Errorf("max-accuracy picked %s, want heavy", choice.ModelName)
	}
}

func TestExhaustiveMinEnergyAndMemory(t *testing.T) {
	f := newFixture(t)
	ce, err := Exhaustive(f.cands, f.pkgs, f.devs, Requirements{Objective: MinEnergy}, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := Exhaustive(f.cands, f.pkgs, f.devs, Requirements{Objective: MinMemory}, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	table, err := Table(f.cands, f.pkgs, f.devs, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range table {
		if c.ALEM.Energy < ce.ALEM.Energy {
			t.Errorf("found lower-energy combo %v than chosen %v", c, ce)
		}
		if c.ALEM.Memory < cm.ALEM.Memory {
			t.Errorf("found lower-memory combo %v than chosen %v", c, cm)
		}
	}
}

func TestExhaustiveInfeasible(t *testing.T) {
	f := newFixture(t)
	_, err := Exhaustive(f.cands, f.pkgs, f.devs, Requirements{Objective: MinLatency, MinAccuracy: 1.01}, f.prof)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("impossible accuracy: err = %v, want ErrInfeasible", err)
	}
	_, err = Exhaustive(f.cands, f.pkgs, f.devs, Requirements{Objective: MaxAccuracy, MaxLatency: time.Nanosecond}, f.prof)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("impossible latency: err = %v, want ErrInfeasible", err)
	}
}

func TestLatencyConstraintRespectedUnderMaxAccuracy(t *testing.T) {
	f := newFixture(t)
	// Pick a budget that excludes the slowest combos.
	table, err := Table(f.cands, f.pkgs, f.devs, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	var minL, maxL time.Duration
	for i, c := range table {
		if i == 0 || c.ALEM.Latency < minL {
			minL = c.ALEM.Latency
		}
		if c.ALEM.Latency > maxL {
			maxL = c.ALEM.Latency
		}
	}
	budget := (minL + maxL) / 2
	choice, err := Exhaustive(f.cands, f.pkgs, f.devs, Requirements{Objective: MaxAccuracy, MaxLatency: budget}, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	if choice.ALEM.Latency > budget {
		t.Errorf("latency %v exceeds budget %v", choice.ALEM.Latency, budget)
	}
}

func TestGreedyIgnoresLatency(t *testing.T) {
	f := newFixture(t)
	req := Requirements{Objective: MinLatency}
	g, err := Greedy(f.cands, f.pkgs, f.devs, req, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Exhaustive(f.cands, f.pkgs, f.devs, req, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy maximizes accuracy so it must pick the heavy model and be at
	// least as slow as the exhaustive optimum (the ablation's point).
	if g.ModelName != "heavy" {
		t.Errorf("greedy picked %s, want heavy", g.ModelName)
	}
	if g.ALEM.Latency < e.ALEM.Latency {
		t.Errorf("greedy latency %v beat exhaustive %v", g.ALEM.Latency, e.ALEM.Latency)
	}
}

func TestQLearnerConvergesToExhaustive(t *testing.T) {
	f := newFixture(t)
	req := Requirements{Objective: MinLatency}
	e, err := Exhaustive(f.cands, f.pkgs, f.devs, req, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	q := &QLearner{Episodes: 2000, Epsilon: 0.3, Rand: rand.New(rand.NewSource(3))}
	c, err := q.Select(f.cands, f.pkgs, f.devs, req, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	// With many episodes and optimistic initialization the bandit explores
	// every arm, so it must find the same optimum.
	if c.ALEM.Latency != e.ALEM.Latency {
		t.Errorf("q-learner latency %v vs exhaustive %v", c.ALEM.Latency, e.ALEM.Latency)
	}
}

func TestQLearnerNeedsRand(t *testing.T) {
	f := newFixture(t)
	q := &QLearner{}
	if _, err := q.Select(f.cands, f.pkgs, f.devs, Requirements{Objective: MinLatency}, f.prof); err == nil {
		t.Error("QLearner without Rand should fail")
	}
}

func TestQLearnerInfeasible(t *testing.T) {
	f := newFixture(t)
	q := &QLearner{Episodes: 100, Rand: rand.New(rand.NewSource(4))}
	_, err := q.Select(f.cands, f.pkgs, f.devs, Requirements{Objective: MinLatency, MinAccuracy: 1.01}, f.prof)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestVariantsExpansion(t *testing.T) {
	m := nn.MustModel("x", []int{2}, []nn.LayerSpec{{Type: "dense", In: 2, Out: 2}})
	vs := Variants(map[string]*nn.Model{"x": m}, true)
	if len(vs) != 3 {
		t.Fatalf("Variants with quantized = %d entries, want 3 (float, int8, int4)", len(vs))
	}
	var sawInt8, sawInt4 bool
	for _, v := range vs {
		if v.Quantized && !v.Int4 {
			sawInt8 = true
		}
		if v.Int4 {
			sawInt4 = true
		}
	}
	if !sawInt8 || !sawInt4 {
		t.Fatalf("Variants missing a quantized form: int8=%v int4=%v", sawInt8, sawInt4)
	}
	vs = Variants(map[string]*nn.Model{"x": m}, false)
	if len(vs) != 1 {
		t.Fatalf("Variants without quantized = %d entries, want 1", len(vs))
	}
}

func TestObjectiveString(t *testing.T) {
	for o, want := range map[Objective]string{
		MinLatency: "min-latency", MaxAccuracy: "max-accuracy",
		MinEnergy: "min-energy", MinMemory: "min-memory",
		Objective(9): "objective(9)",
	} {
		if got := o.String(); got != want {
			t.Errorf("Objective(%d).String() = %q, want %q", o, got, want)
		}
	}
}

func TestChoiceString(t *testing.T) {
	f := newFixture(t)
	c, err := Exhaustive(f.cands, f.pkgs, f.devs, Requirements{Objective: MinLatency}, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() == "" {
		t.Error("empty Choice string")
	}
}

// The paper's walk-through: deploying on a Raspberry Pi, the selector must
// return a combination that actually fits the Pi and uses an edge package.
func TestRaspberryPiScenario(t *testing.T) {
	f := newFixture(t)
	rpi, err := hardware.ByName("rpi3")
	if err != nil {
		t.Fatal(err)
	}
	choice, err := Exhaustive(f.cands, f.pkgs, []hardware.Device{rpi},
		Requirements{Objective: MaxAccuracy, MaxLatency: 50 * time.Millisecond}, f.prof)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Device.Name != "rpi3" {
		t.Errorf("device = %s, want rpi3", choice.Device.Name)
	}
	if choice.ALEM.Memory > rpi.MemBytes {
		t.Error("selected combo does not fit the Pi")
	}
}
