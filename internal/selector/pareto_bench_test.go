package selector

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// randomSpace synthesizes an n-point selection space shaped like the real
// one: a handful of discrete cost scales (model families × packages ×
// devices) with per-point jitter, accuracy loosely anti-correlated with
// cost so a non-trivial frontier emerges.
func randomSpace(n int, rng *rand.Rand) []Choice {
	out := make([]Choice, n)
	for i := range out {
		scale := float64(uint(1) << uint(rng.Intn(8))) // 8 cost scales
		lat := time.Duration((0.5 + rng.Float64()) * scale * float64(time.Millisecond))
		out[i] = mk(
			0.5+0.4*rng.Float64()*(0.3+scale/128), // bigger tends more accurate
			lat,
			(0.5+rng.Float64())*scale*0.01,
			int64((0.5+rng.Float64())*scale*float64(1<<20)),
		)
	}
	return out
}

// frontierKey flattens a choice's tuple for set comparison.
func frontierKey(c Choice) string {
	return fmt.Sprintf("%.9f/%d/%.9f/%d", c.ALEM.Accuracy, c.ALEM.Latency, c.ALEM.Energy, c.ALEM.Memory)
}

// TestParetoSweepMatchesNaive property-tests the sort-based sweep against
// the O(n²) reference on random spaces, including duplicate-heavy ones.
func TestParetoSweepMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sizes := []int{0, 1, 2, 3, 10, 100, 1000}
	if !testing.Short() {
		sizes = append(sizes, 5000)
	}
	for _, n := range sizes {
		space := randomSpace(n, rng)
		// Inject duplicates and exact ties to stress the tie-break path.
		if n >= 10 {
			for i := 0; i < n/10; i++ {
				space[rng.Intn(n)] = space[rng.Intn(n)]
			}
		}
		got := Pareto(space)
		want := paretoNaive(space)
		if len(got) != len(want) {
			t.Fatalf("n=%d: sweep frontier %d points, naive %d", n, len(got), len(want))
		}
		gk := make([]string, len(got))
		wk := make([]string, len(want))
		for i := range got {
			gk[i] = frontierKey(got[i])
			wk[i] = frontierKey(want[i])
		}
		sort.Strings(gk)
		sort.Strings(wk)
		for i := range gk {
			if gk[i] != wk[i] {
				t.Fatalf("n=%d: frontier sets differ at %d: %s vs %s", n, i, gk[i], wk[i])
			}
		}
		// Ordering contract: ascending latency.
		for i := 1; i < len(got); i++ {
			if got[i].ALEM.Latency < got[i-1].ALEM.Latency {
				t.Fatalf("n=%d: frontier not latency-sorted at %d", n, i)
			}
		}
	}
}

// TestParetoAllOnFrontier covers the worst case for the sweep: every point
// incomparable (accuracy strictly increasing with latency).
func TestParetoAllOnFrontier(t *testing.T) {
	n := 500
	space := make([]Choice, n)
	for i := range space {
		space[i] = mk(float64(i)/float64(n), time.Duration(i)*time.Millisecond, float64(n-i), int64(n-i))
	}
	got := Pareto(space)
	if len(got) != n {
		t.Fatalf("frontier = %d, want all %d", len(got), n)
	}
}

// BenchmarkPareto proves the sweep on a 10k-point space (the satellite's
// target size) and smaller ones; BenchmarkParetoNaive is the old scan for
// comparison.
func BenchmarkPareto(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		space := randomSpace(n, rand.New(rand.NewSource(42)))
		b.Run(fmt.Sprintf("sweep-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if f := Pareto(space); len(f) == 0 {
					b.Fatal("empty frontier")
				}
			}
		})
		b.Run(fmt.Sprintf("naive-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if f := paretoNaive(space); len(f) == 0 {
					b.Fatal("empty frontier")
				}
			}
		})
	}
}
