// Package zoo provides the model families of the paper's Figure 5 first
// axis ("AI models": AlexNet, VGG, ResNet, MobileNet, SqueezeNet, …, plus
// Microsoft's kilobyte-scale Bonsai/ProtoNN line).
//
// Substitution note (DESIGN.md §2): the paper's models are ImageNet-scale;
// this repo trains miniaturized but architecture-faithful versions on the
// procedural shapes dataset. What the experiments rely on — the *relative*
// ordering of parameter count, FLOPs, and accuracy across families (e.g.
// squeezenet-m reaching alexnet-m-level accuracy at tens of times fewer
// parameters, mobilenet-m trading a little accuracy for far fewer FLOPs) —
// is preserved by construction.
package zoo

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"openei/internal/nn"
	"openei/internal/tensor"
)

// ErrUnknownModel is returned when a model name is not in the catalog.
var ErrUnknownModel = errors.New("zoo: unknown model")

// Entry describes one model family member.
type Entry struct {
	// Name is the catalog key, e.g. "squeezenet-m".
	Name string
	// Kind groups entries ("cnn", "mlp", "kb" for kilobyte-class).
	Kind string
	// Desc explains which published architecture the entry miniaturizes.
	Desc string
	// Build constructs the (untrained) model for a 1×size×size image input
	// with the given class count.
	Build func(size, classes int) (*nn.Model, error)
}

// Catalog returns all image-model entries sorted by name.
func Catalog() []Entry {
	es := []Entry{
		{
			Name: "mlp", Kind: "mlp",
			Desc:  "two-layer perceptron baseline",
			Build: buildMLP,
		},
		{
			Name: "lenet", Kind: "cnn",
			Desc:  "LeNet-5-style small CNN",
			Build: buildLeNet,
		},
		{
			Name: "alexnet-m", Kind: "cnn",
			Desc:  "AlexNet-style CNN: conv stack + large dense head (params dominated by FC layers, like AlexNet [39])",
			Build: buildAlexNetM,
		},
		{
			Name: "vgg-m", Kind: "cnn",
			Desc:  "VGG-style CNN: deep uniform 3×3 conv stacks [8]",
			Build: buildVGGM,
		},
		{
			Name: "squeezenet-m", Kind: "cnn",
			Desc:  "SqueezeNet-style CNN: 1×1 squeeze / 3×3 expand, global average pooling, no dense head [38]",
			Build: buildSqueezeNetM,
		},
		{
			Name: "mobilenet-m", Kind: "cnn",
			Desc:  "MobileNet-style CNN: depthwise separable convolutions [9]",
			Build: buildMobileNetM,
		},
		{
			Name: "bonsai-m", Kind: "kb",
			Desc:  "Bonsai-style kilobyte model: sparse low-dimensional projection then a shallow decision layer [40]",
			Build: buildBonsaiM,
		},
		{
			Name: "protonn-m", Kind: "kb",
			Desc:  "ProtoNN-style kilobyte model: learned projection to a prototype space [41]",
			Build: buildProtoNNM,
		},
		{
			Name: "fastgrnn-m", Kind: "rnn",
			Desc:  "FastGRNN-style recurrent classifier: pixel rows as a time series through one gated cell; the compiled plan carries an EMI-RNN-style early-exit graph",
			Build: buildFastGRNNM,
		},
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Name < es[j].Name })
	return es
}

// Names returns catalog names in order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, e := range cat {
		out[i] = e.Name
	}
	return out
}

// ByName looks an entry up.
func ByName(name string) (Entry, error) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
}

// Build constructs and initializes the named model for a 1×size×size input.
func Build(name string, size, classes int, rng *rand.Rand) (*nn.Model, error) {
	e, err := ByName(name)
	if err != nil {
		return nil, err
	}
	m, err := e.Build(size, classes)
	if err != nil {
		return nil, fmt.Errorf("zoo: build %s: %w", name, err)
	}
	m.InitParams(rng)
	return m, nil
}

func conv(inC, h, w, outC, k, stride, pad int) nn.LayerSpec {
	s := tensor.Conv2DSpec{InC: inC, InH: h, InW: w, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad}
	return nn.LayerSpec{Type: "conv2d", Conv: &s}
}

func dwconv(c, h, w, k, stride, pad int) nn.LayerSpec {
	s := tensor.Conv2DSpec{InC: c, InH: h, InW: w, OutC: c, KH: k, KW: k, Stride: stride, Pad: pad}
	return nn.LayerSpec{Type: "dwconv2d", Conv: &s}
}

func pool(c, h, w int) nn.LayerSpec {
	s := tensor.PoolSpec{C: c, H: h, W: w, K: 2, Stride: 2}
	return nn.LayerSpec{Type: "maxpool", Pool: &s}
}

func relu() nn.LayerSpec { return nn.LayerSpec{Type: "relu"} }

func buildMLP(size, classes int) (*nn.Model, error) {
	in := size * size
	return nn.NewModel("mlp", []int{1, size, size}, []nn.LayerSpec{
		{Type: "flatten"},
		{Type: "dense", In: in, Out: 64},
		relu(),
		{Type: "dense", In: 64, Out: classes},
	})
}

func buildLeNet(size, classes int) (*nn.Model, error) {
	if size%4 != 0 {
		return nil, fmt.Errorf("lenet needs size divisible by 4, got %d", size)
	}
	h2 := size / 2
	h4 := size / 4
	return nn.NewModel("lenet", []int{1, size, size}, []nn.LayerSpec{
		conv(1, size, size, 6, 3, 1, 1), relu(), pool(6, size, size),
		conv(6, h2, h2, 12, 3, 1, 1), relu(), pool(12, h2, h2),
		{Type: "flatten"},
		{Type: "dense", In: 12 * h4 * h4, Out: 48},
		relu(),
		{Type: "dense", In: 48, Out: classes},
	})
}

func buildAlexNetM(size, classes int) (*nn.Model, error) {
	if size%4 != 0 {
		return nil, fmt.Errorf("alexnet-m needs size divisible by 4, got %d", size)
	}
	h2, h4 := size/2, size/4
	// Like AlexNet, the dense head holds the overwhelming majority of
	// parameters (the property SqueezeNet's 50× claim is measured against).
	return nn.NewModel("alexnet-m", []int{1, size, size}, []nn.LayerSpec{
		conv(1, size, size, 16, 3, 1, 1), relu(), pool(16, size, size),
		conv(16, h2, h2, 32, 3, 1, 1), relu(), pool(32, h2, h2),
		conv(32, h4, h4, 32, 3, 1, 1), relu(),
		{Type: "flatten"},
		{Type: "dense", In: 32 * h4 * h4, Out: 256},
		relu(),
		{Type: "dropout", Rate: 0.3},
		{Type: "dense", In: 256, Out: 128},
		relu(),
		{Type: "dense", In: 128, Out: classes},
	})
}

func buildVGGM(size, classes int) (*nn.Model, error) {
	if size%4 != 0 {
		return nil, fmt.Errorf("vgg-m needs size divisible by 4, got %d", size)
	}
	h2, h4 := size/2, size/4
	return nn.NewModel("vgg-m", []int{1, size, size}, []nn.LayerSpec{
		conv(1, size, size, 16, 3, 1, 1), relu(),
		conv(16, size, size, 16, 3, 1, 1), relu(), pool(16, size, size),
		conv(16, h2, h2, 32, 3, 1, 1), relu(),
		conv(32, h2, h2, 32, 3, 1, 1), relu(), pool(32, h2, h2),
		conv(32, h4, h4, 64, 3, 1, 1), relu(),
		conv(64, h4, h4, 64, 3, 1, 1), relu(),
		{Type: "flatten"},
		{Type: "dense", In: 64 * h4 * h4, Out: 128},
		relu(),
		{Type: "dense", In: 128, Out: classes},
	})
}

func buildSqueezeNetM(size, classes int) (*nn.Model, error) {
	if size%4 != 0 {
		return nil, fmt.Errorf("squeezenet-m needs size divisible by 4, got %d", size)
	}
	h2, h4 := size/2, size/4
	// Fire-module spirit in sequential form: 1×1 squeeze then 3×3 expand;
	// all-conv with global average pooling — no dense head at all.
	return nn.NewModel("squeezenet-m", []int{1, size, size}, []nn.LayerSpec{
		conv(1, size, size, 16, 3, 1, 1), relu(), pool(16, size, size),
		// fire 1
		conv(16, h2, h2, 4, 1, 1, 0), relu(), // squeeze
		conv(4, h2, h2, 16, 3, 1, 1), relu(), // expand
		pool(16, h2, h2),
		// fire 2
		conv(16, h4, h4, 8, 1, 1, 0), relu(),
		conv(8, h4, h4, 32, 3, 1, 1), relu(),
		// classifier conv + GAP (SqueezeNet's final conv10 + avgpool)
		conv(32, h4, h4, classes, 1, 1, 0),
		{Type: "gap"},
	})
}

func buildMobileNetM(size, classes int) (*nn.Model, error) {
	if size%4 != 0 {
		return nil, fmt.Errorf("mobilenet-m needs size divisible by 4, got %d", size)
	}
	h2, h4 := size/2, size/4
	return nn.NewModel("mobilenet-m", []int{1, size, size}, []nn.LayerSpec{
		conv(1, size, size, 8, 3, 1, 1), relu(), pool(8, size, size),
		// depthwise separable block 1
		dwconv(8, h2, h2, 3, 1, 1), relu(),
		conv(8, h2, h2, 16, 1, 1, 0), relu(), // pointwise
		pool(16, h2, h2),
		// depthwise separable block 2
		dwconv(16, h4, h4, 3, 1, 1), relu(),
		conv(16, h4, h4, 32, 1, 1, 0), relu(),
		{Type: "gap"},
		{Type: "dense", In: 32, Out: classes},
	})
}

func buildBonsaiM(size, classes int) (*nn.Model, error) {
	in := size * size
	// Bonsai learns a sparse projection into a very low-dimensional space
	// and a shallow tree there; the sequential stand-in is an aggressive
	// projection (dim 8) and a single decision layer, keeping the defining
	// property: a model measured in kilobytes.
	return nn.NewModel("bonsai-m", []int{1, size, size}, []nn.LayerSpec{
		{Type: "flatten"},
		{Type: "dense", In: in, Out: 8},
		relu(),
		{Type: "dense", In: 8, Out: classes},
	})
}

func buildProtoNNM(size, classes int) (*nn.Model, error) {
	in := size * size
	// ProtoNN projects into a prototype space and scores against learned
	// prototypes; the stand-in is projection (dim 12) → prototype scores.
	return nn.NewModel("protonn-m", []int{1, size, size}, []nn.LayerSpec{
		{Type: "flatten"},
		{Type: "dense", In: in, Out: 12},
		relu(),
		{Type: "dense", In: 12, Out: 16},
		relu(),
		{Type: "dense", In: 16, Out: classes},
	})
}

func buildFastGRNNM(size, classes int) (*nn.Model, error) {
	// The image is read as a time series — one pixel row per step —
	// through a single FastGRNN cell, with a dense head on the hidden
	// state. Because the head applies to *any* step's state, the compiled
	// plan supports confidence-thresholded early exit: easy inputs retire
	// after a few rows instead of sweeping the full window.
	return nn.NewModel("fastgrnn-m", []int{1, size, size}, []nn.LayerSpec{
		{Type: "flatten"},
		{Type: "fastgrnn", RNN: &nn.RNNSpec{T: size, D: size, H: 16}},
		{Type: "dense", In: 16, Out: classes},
	})
}

// TrainAll builds and trains every catalog model on the given data with a
// shared configuration, returning models keyed by name. It is the helper
// the selector experiments and the cloud registry bootstrap use.
func TrainAll(train nn.Dataset, size, classes, epochs int, seed int64) (map[string]*nn.Model, error) {
	models := make(map[string]*nn.Model, len(Catalog()))
	for _, e := range Catalog() {
		rng := rand.New(rand.NewSource(seed))
		m, err := Build(e.Name, size, classes, rng)
		if err != nil {
			return nil, err
		}
		// 0.02 is the highest rate at which the deepest family (vgg-m)
		// trains stably with plain SGD+momentum.
		if _, _, err := nn.Train(m, train, nn.TrainConfig{
			Epochs: epochs, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng,
		}); err != nil {
			return nil, fmt.Errorf("zoo: train %s: %w", e.Name, err)
		}
		models[e.Name] = m
	}
	return models, nil
}
