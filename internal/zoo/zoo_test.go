package zoo

import (
	"errors"
	"math/rand"
	"testing"

	"openei/internal/dataset"
	"openei/internal/nn"
	"openei/internal/tensor"
)

func TestCatalogComplete(t *testing.T) {
	want := []string{"alexnet-m", "bonsai-m", "fastgrnn-m", "lenet", "mlp", "mobilenet-m", "protonn-m", "squeezenet-m", "vgg-m"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("catalog = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("catalog[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("resnet-152"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model: err = %v, want ErrUnknownModel", err)
	}
}

func TestAllModelsBuildAndForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(2, 1, 16, 16)
	x.Rand(rng, 1)
	for _, e := range Catalog() {
		t.Run(e.Name, func(t *testing.T) {
			m, err := Build(e.Name, 16, 6, rng)
			if err != nil {
				t.Fatal(err)
			}
			logits, err := m.Forward(x, false)
			if err != nil {
				t.Fatal(err)
			}
			if logits.Dims() != 2 || logits.Dim(0) != 2 || logits.Dim(1) != 6 {
				t.Errorf("%s logits shape = %v, want [2 6]", e.Name, logits.Shape())
			}
			if m.ParamCount() == 0 {
				t.Errorf("%s has no parameters", e.Name)
			}
		})
	}
}

func TestBuildRejectsBadSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"lenet", "alexnet-m", "vgg-m", "squeezenet-m", "mobilenet-m"} {
		if _, err := Build(name, 15, 6, rng); err == nil {
			t.Errorf("%s with size 15 should fail", name)
		}
	}
}

// The headline structural claims the experiments rely on:
// AlexNet-m params ≫ SqueezeNet-m params (the 50× SqueezeNet claim scaled
// down), and MobileNet-m FLOPs < VGG-m FLOPs.
func TestFamilySizeRelationships(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	build := func(name string) *nn.Model {
		m, err := Build(name, 16, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	alex := build("alexnet-m")
	squeeze := build("squeezenet-m")
	vgg := build("vgg-m")
	mobile := build("mobilenet-m")
	bonsai := build("bonsai-m")

	if ratio := float64(alex.ParamCount()) / float64(squeeze.ParamCount()); ratio < 20 {
		t.Errorf("alexnet/squeezenet param ratio = %.1f, want ≥ 20 (paper cites ~50×)", ratio)
	}
	if mobile.FLOPs(1) >= vgg.FLOPs(1) {
		t.Errorf("mobilenet FLOPs %d not below vgg %d", mobile.FLOPs(1), vgg.FLOPs(1))
	}
	// Kilobyte-class models must be small in absolute terms.
	if kb := bonsai.WeightBytes(); kb > 32<<10 {
		t.Errorf("bonsai-m weights = %d bytes, want ≤ 32 kB", kb)
	}
	if vgg.FLOPs(1) <= alex.FLOPs(1) {
		t.Errorf("vgg FLOPs %d should exceed alexnet %d", vgg.FLOPs(1), alex.FLOPs(1))
	}
}

func TestTrainAllReachesAboveChance(t *testing.T) {
	if testing.Short() {
		t.Skip("training all families is slow")
	}
	cfg := dataset.ShapesConfig{Samples: 500, Size: 16, Classes: 4, Noise: 0.25, Seed: 7}
	train, test, err := dataset.Shapes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := TrainAll(train, 16, 4, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != len(Catalog()) {
		t.Fatalf("TrainAll returned %d models", len(models))
	}
	for name, m := range models {
		acc, err := nn.Accuracy(m, test.X, test.Y)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if acc < 0.4 { // chance = 0.25
			t.Errorf("%s accuracy = %v, want ≥ 0.4", name, acc)
		}
	}
}

func TestModelsSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, name := range []string{"squeezenet-m", "mobilenet-m"} {
		m, err := Build(name, 16, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		data, err := nn.EncodeModel(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m2, err := nn.DecodeModel(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := tensor.New(1, 1, 16, 16)
		x.Rand(rng, 1)
		y1, err := m.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		y2, err := m2.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(y1, y2, 1e-6) {
			t.Errorf("%s: decoded model differs", name)
		}
	}
}
