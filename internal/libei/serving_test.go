package libei

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/hardware"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/serving"
)

// servingNode builds a libei server whose engine fronts a parameter-free
// identity model (logits = input), so the expected class of a one-hot
// input is its hot index.
func servingNode(t *testing.T, cfg serving.Config) (*Server, *httptest.Server) {
	t.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	mgr := pkgmgr.New(pkg, dev)
	t.Cleanup(mgr.Close)
	ident := nn.MustModel("ident", []int{4}, []nn.LayerSpec{{Type: "flatten"}})
	if err := mgr.Load(ident, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	heavy := nn.MustModel("heavy", []int{1024}, []nn.LayerSpec{
		{Type: "dense", In: 1024, Out: 1024},
		{Type: "relu"},
		{Type: "dense", In: 1024, Out: 4},
	})
	heavy.InitParams(rand.New(rand.NewSource(2)))
	if err := mgr.Load(heavy, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	s := NewServer("edge-1", nil, mgr)
	e := serving.NewEngine(mgr, cfg)
	t.Cleanup(e.Close)
	s.SetEngine(e)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestServingInferEndToEnd(t *testing.T) {
	_, ts := servingNode(t, serving.Config{})
	c := NewClient(ts.URL)
	res, err := c.Infer("ident", []float32{0, 0, 1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != 2 {
		t.Errorf("class = %d, want 2", res.Class)
	}
	if res.BatchSize < 1 {
		t.Errorf("batch size = %d", res.BatchSize)
	}
	// The route is listed like any other algorithm.
	algos, err := c.Algorithms()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range algos {
		if a == "serving/infer" {
			found = true
		}
	}
	if !found {
		t.Errorf("serving/infer not in algorithm listing %v", algos)
	}
}

func TestServingInferValidation(t *testing.T) {
	_, ts := servingNode(t, serving.Config{})
	for _, tc := range []struct {
		name, url string
		status    int
	}{
		{"missing model", "/ei_algorithms/serving/infer?input=1,2", http.StatusBadRequest},
		{"missing input", "/ei_algorithms/serving/infer?model=ident", http.StatusBadRequest},
		{"bad float", "/ei_algorithms/serving/infer?model=ident&input=1,x", http.StatusBadRequest},
		{"wrong arity", "/ei_algorithms/serving/infer?model=ident&input=1,2", http.StatusBadRequest},
		{"unknown model", "/ei_algorithms/serving/infer?model=nope&input=1,2,3,4", http.StatusNotFound},
		{"bad deadline", "/ei_algorithms/serving/infer?model=ident&input=1,2,3,4&deadline_ms=-1", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

func TestServingOverloadMapsTo429(t *testing.T) {
	_, ts := servingNode(t, serving.Config{
		MaxBatch: 1, MaxWait: time.Millisecond, Replicas: 1, QueueDepth: 1,
	})
	c := NewClient(ts.URL)
	input := make([]float32, 1024)
	const clients = 40
	var wg sync.WaitGroup
	var got429 bool
	var mu sync.Mutex
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Infer("heavy", input, 0)
			if err != nil && strings.Contains(err.Error(), "status 429") {
				mu.Lock()
				got429 = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if !got429 {
		t.Error("no request was rejected with 429 under overload")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := servingNode(t, serving.Config{})
	c := NewClient(ts.URL)

	// Before any inference: engine attached, no per-model stats yet.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.NodeID != "edge-1" || len(m.Serving) != 0 {
		t.Fatalf("fresh metrics = %+v", m)
	}

	if _, err := c.Infer("ident", []float32{1, 0, 0, 0}, 0); err != nil {
		t.Fatal(err)
	}
	m, err = c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Serving) != 1 || m.Serving[0].Model != "ident" {
		t.Fatalf("metrics after infer = %+v", m)
	}
	if m.Serving[0].Completed != 1 || m.Serving[0].Batches != 1 {
		t.Errorf("counters = %+v", m.Serving[0])
	}

	// The raw envelope shape: {"ok":true,"result":{"node_id":...,"serving":[...]}}.
	resp, err := http.Get(ts.URL + "/ei_metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		OK     bool            `json:"ok"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if !env.OK || !strings.Contains(string(env.Result), `"serving"`) {
		t.Errorf("envelope = ok:%v result:%s", env.OK, env.Result)
	}
	_ = s
}

func TestMetricsWithoutEngine(t *testing.T) {
	_, ts := testNode(t) // no engine attached
	c := NewClient(ts.URL)
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Serving != nil {
		t.Errorf("serving stats without engine = %+v", m.Serving)
	}
}

func TestClientNon2xxIsError(t *testing.T) {
	// A server that returns an ok-looking envelope with a 500 status: the
	// client must surface an error rather than decode it as success.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"ok":true,"result":"bogus"}`))
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	if _, err := c.Status(); err == nil || !strings.Contains(err.Error(), "status 500") {
		t.Errorf("err = %v, want status 500 error", err)
	}
}
