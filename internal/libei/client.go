package libei

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Client is a typed client for a remote OpenEI node's libei API; it is what
// other edges, the cloud, and third-party tools (cmd/eictl) use.
type Client struct {
	// BaseURL is the node address, e.g. "http://192.168.1.7:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 10 s timeout.
	HTTPClient *http.Client
}

// NewClient returns a client for the node at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) get(path string, query url.Values, result any) error {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	resp, err := c.HTTPClient.Get(u)
	if err != nil {
		return fmt.Errorf("libei client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	var env struct {
		OK     bool            `json:"ok"`
		Result json.RawMessage `json:"result"`
		Error  string          `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return fmt.Errorf("libei client: decode %s: %w", path, err)
	}
	if !env.OK {
		return fmt.Errorf("libei client: %s: %s (status %d)", path, env.Error, resp.StatusCode)
	}
	if result != nil {
		if err := json.Unmarshal(env.Result, result); err != nil {
			return fmt.Errorf("libei client: unmarshal %s: %w", path, err)
		}
	}
	return nil
}

// CallAlgorithm invokes /ei_algorithms/{scenario}/{name} and unmarshals the
// result into out (pass a pointer, or nil to discard).
func (c *Client) CallAlgorithm(scenario, name string, args url.Values, out any) error {
	return c.get("/ei_algorithms/"+url.PathEscape(scenario)+"/"+url.PathEscape(name), args, out)
}

// Realtime fetches the n most recent samples of a sensor.
func (c *Client) Realtime(sensorID string, n int) ([]DataSample, error) {
	q := url.Values{}
	if n > 0 {
		q.Set("n", fmt.Sprint(n))
	}
	var out []DataSample
	if err := c.get("/ei_data/realtime/"+url.PathEscape(sensorID), q, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Historical fetches samples in [start, end].
func (c *Client) Historical(sensorID string, start, end time.Time) ([]DataSample, error) {
	q := url.Values{}
	q.Set("start", start.Format(time.RFC3339))
	q.Set("end", end.Format(time.RFC3339))
	var out []DataSample
	if err := c.get("/ei_data/historical/"+url.PathEscape(sensorID), q, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Algorithms lists the node's registered scenario/name pairs.
func (c *Client) Algorithms() ([]string, error) {
	var out []string
	if err := c.get("/ei_algorithms", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Models lists the node's loaded models with their modelled costs.
func (c *Client) Models() ([]ModelStatus, error) {
	var out []ModelStatus
	if err := c.get("/ei_models", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Status fetches node identity and capabilities.
func (c *Client) Status() (Status, error) {
	var out Status
	if err := c.get("/ei_status", nil, &out); err != nil {
		return Status{}, err
	}
	return out, nil
}

// Resources fetches the node's computing resources: device capacity and
// live VCU allocations.
func (c *Client) Resources() (ResourceStatus, error) {
	var out ResourceStatus
	if err := c.get("/ei_resources", nil, &out); err != nil {
		return ResourceStatus{}, err
	}
	return out, nil
}

// ModelBlob downloads a serialized model — the edge–edge model-sharing
// path.
func (c *Client) ModelBlob(name string) ([]byte, error) {
	resp, err := c.HTTPClient.Get(c.BaseURL + "/ei_models/" + url.PathEscape(name) + "/blob")
	if err != nil {
		return nil, fmt.Errorf("libei client: blob %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("libei client: blob %s: status %d: %s", name, resp.StatusCode, body)
	}
	return io.ReadAll(resp.Body)
}
