package libei

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"openei/internal/obs"
)

// Typed client-side errors: callers branch on the node's admission verdict
// with errors.Is instead of string-matching status text. A gateway uses
// them to decide what is surfaced (overload, deadline) versus what
// triggers failover (everything transport-level or 5xx).
var (
	// ErrOverloaded means the node shed the request (HTTP 429): its
	// serving queue was full at admission.
	ErrOverloaded = errors.New("libei: node overloaded")
	// ErrDeadline means the request's deadline expired in the node's
	// queue (HTTP 408).
	ErrDeadline = errors.New("libei: deadline expired on node")
	// ErrUnavailable means the node is up but not serving (HTTP 503,
	// e.g. a closed engine).
	ErrUnavailable = errors.New("libei: node unavailable")
)

// StatusError is a non-2xx node response. It unwraps to the typed error
// matching its code, so errors.Is(err, ErrOverloaded) works, and
// errors.As exposes the raw status for anything else.
type StatusError struct {
	// Path is the request path that failed.
	Path string
	// Code is the HTTP status.
	Code int
	// Message is the node's error text (envelope error or raw body).
	Message string
	// TraceID is the failed request's trace ID when the responder echoed
	// one (X-Openei-Trace) — a gateway always does. Resolve it at
	// /gw_trace?id= to see exactly where the request died.
	TraceID string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("libei client: %s: status %d: %s", e.Path, e.Code, e.Message)
}

// Unwrap maps well-known statuses to their typed sentinel.
func (e *StatusError) Unwrap() error {
	switch e.Code {
	case http.StatusTooManyRequests:
		return ErrOverloaded
	case http.StatusRequestTimeout:
		return ErrDeadline
	case http.StatusServiceUnavailable:
		return ErrUnavailable
	}
	return nil
}

// Client is a typed client for a remote OpenEI node's libei API; it is what
// other edges, the cloud, and third-party tools (cmd/eictl) use. Methods
// come in pairs: Foo uses context.Background, FooCtx threads a caller
// context through the HTTP request for cancellation and deadlines.
type Client struct {
	// BaseURL is the node address, e.g. "http://192.168.1.7:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 10 s timeout.
	HTTPClient *http.Client

	// Lifetime transport counters (the gateway's per-node view).
	nRequests atomic.Uint64
	nErrors   atomic.Uint64
	latencyNS atomic.Uint64
}

// NewClient returns a client for the node at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// observe records one request's transport outcome. Caller cancellation
// and caller deadline expiry are not transport errors: a hedge or retry
// loser whose context ends says nothing about the node's link.
func (c *Client) observe(start time.Time, err error) {
	c.nRequests.Add(1)
	c.latencyNS.Add(uint64(time.Since(start)))
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		c.nErrors.Add(1)
	}
}

// ClientStats is a client's lifetime transport counters: requests issued,
// transport-level failures (dial/reset/timeout — HTTP error statuses do
// not count), and mean round-trip latency.
type ClientStats struct {
	Requests        uint64  `json:"requests"`
	TransportErrors uint64  `json:"transport_errors"`
	AvgLatencyMS    float64 `json:"avg_latency_ms"`
}

// Stats snapshots the client's transport counters.
func (c *Client) Stats() ClientStats {
	n := c.nRequests.Load()
	s := ClientStats{Requests: n, TransportErrors: c.nErrors.Load()}
	if n > 0 {
		s.AvgLatencyMS = float64(c.latencyNS.Load()) / float64(n) / 1e6
	}
	return s
}

// ForwardResult is the verbatim outcome of one proxied request.
type ForwardResult struct {
	Status      int
	ContentType string
	Body        []byte
}

// maxForwardBody bounds a forwarded response body (model blobs are the
// largest payloads; 32 MiB is far above any current model).
const maxForwardBody = 32 << 20

// Forward issues a GET for pathAndQuery verbatim and returns the raw
// status and body without interpreting the JSON envelope. Each call
// builds a fresh request, so a front tier can clone one inbound request
// across retry and hedge attempts. Transport failures return an error;
// any HTTP status — including 4xx/5xx — comes back in the result for the
// caller to interpret.
func (c *Client) Forward(ctx context.Context, pathAndQuery string) (ForwardResult, error) {
	return c.ForwardTrace(ctx, pathAndQuery, "")
}

// ForwardTrace is Forward with trace context attached: a non-empty trace
// (an encoded obs.TraceContext) rides the X-Openei-Trace request header,
// so the receiving node adopts the caller's trace ID and sampling
// verdict. The gateway uses it to give each retry/hedge attempt its own
// parent span.
func (c *Client) ForwardTrace(ctx context.Context, pathAndQuery, trace string) (ForwardResult, error) {
	if !strings.HasPrefix(pathAndQuery, "/") {
		pathAndQuery = "/" + pathAndQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+pathAndQuery, nil)
	if err != nil {
		return ForwardResult{}, fmt.Errorf("libei client: forward %s: %w", pathAndQuery, err)
	}
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	c.observe(start, err)
	if err != nil {
		return ForwardResult{}, fmt.Errorf("libei client: forward %s: %w", pathAndQuery, err)
	}
	defer resp.Body.Close()
	// Read one byte past the cap so an oversized body is an error, never a
	// silently truncated 200.
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody+1))
	if err != nil {
		return ForwardResult{}, fmt.Errorf("libei client: forward %s: read body: %w", pathAndQuery, err)
	}
	if len(body) > maxForwardBody {
		return ForwardResult{}, fmt.Errorf("libei client: forward %s: body exceeds %d bytes", pathAndQuery, maxForwardBody)
	}
	return ForwardResult{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        body,
	}, nil
}

func (c *Client) get(ctx context.Context, path string, query url.Values, result any) error {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("libei client: GET %s: %w", path, err)
	}
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	c.observe(start, err)
	if err != nil {
		return fmt.Errorf("libei client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		// Non-2xx is an error regardless of body; surface the envelope's
		// message when the node sent one, the raw body otherwise.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		msg := strings.TrimSpace(string(body))
		var env struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &env) == nil && env.Error != "" {
			msg = env.Error
		}
		return &StatusError{Path: path, Code: resp.StatusCode, Message: msg,
			TraceID: resp.Header.Get(obs.TraceHeader)}
	}
	var env struct {
		OK     bool            `json:"ok"`
		Result json.RawMessage `json:"result"`
		Error  string          `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return fmt.Errorf("libei client: decode %s: %w", path, err)
	}
	if !env.OK {
		return fmt.Errorf("libei client: %s: %s (status %d)", path, env.Error, resp.StatusCode)
	}
	if result != nil {
		if err := json.Unmarshal(env.Result, result); err != nil {
			return fmt.Errorf("libei client: unmarshal %s: %w", path, err)
		}
	}
	return nil
}

// CallAlgorithm invokes /ei_algorithms/{scenario}/{name} and unmarshals the
// result into out (pass a pointer, or nil to discard).
func (c *Client) CallAlgorithm(scenario, name string, args url.Values, out any) error {
	return c.CallAlgorithmCtx(context.Background(), scenario, name, args, out)
}

// CallAlgorithmCtx is CallAlgorithm bounded by ctx.
func (c *Client) CallAlgorithmCtx(ctx context.Context, scenario, name string, args url.Values, out any) error {
	return c.get(ctx, "/ei_algorithms/"+url.PathEscape(scenario)+"/"+url.PathEscape(name), args, out)
}

// Infer runs one sample through the node's serving engine
// (/ei_algorithms/serving/infer): input is the flat sample vector,
// deadline ≤ 0 means no deadline. Overload surfaces as a status-429 error.
func (c *Client) Infer(model string, input []float32, deadline time.Duration) (InferResult, error) {
	return c.InferCtx(context.Background(), model, input, deadline)
}

// InferCtx is Infer bounded by ctx.
func (c *Client) InferCtx(ctx context.Context, model string, input []float32, deadline time.Duration) (InferResult, error) {
	return c.InferAs(ctx, "", model, input, deadline)
}

// InferAs is InferCtx submitting as the named tenant: the node admits and
// schedules the request under that tenant's class (token-bucket rate,
// priority tier, fair-share weight). An empty tenant rides the node's
// default class, as does a name the node has not declared.
func (c *Client) InferAs(ctx context.Context, tenant, model string, input []float32, deadline time.Duration) (InferResult, error) {
	parts := make([]string, len(input))
	for i, v := range input {
		parts[i] = fmt.Sprintf("%g", v)
	}
	q := url.Values{}
	q.Set("model", model)
	q.Set("input", strings.Join(parts, ","))
	if tenant != "" {
		q.Set("tenant", tenant)
	}
	if deadline > 0 {
		q.Set("deadline_ms", fmt.Sprintf("%g", float64(deadline)/float64(time.Millisecond)))
	}
	var out InferResult
	if err := c.CallAlgorithmCtx(ctx, "serving", "infer", q, &out); err != nil {
		return InferResult{}, err
	}
	return out, nil
}

// Realtime fetches the n most recent samples of a sensor.
func (c *Client) Realtime(sensorID string, n int) ([]DataSample, error) {
	return c.RealtimeCtx(context.Background(), sensorID, n)
}

// RealtimeCtx is Realtime bounded by ctx.
func (c *Client) RealtimeCtx(ctx context.Context, sensorID string, n int) ([]DataSample, error) {
	q := url.Values{}
	if n > 0 {
		q.Set("n", fmt.Sprint(n))
	}
	var out []DataSample
	if err := c.get(ctx, "/ei_data/realtime/"+url.PathEscape(sensorID), q, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Historical fetches samples in [start, end].
func (c *Client) Historical(sensorID string, start, end time.Time) ([]DataSample, error) {
	return c.HistoricalCtx(context.Background(), sensorID, start, end)
}

// HistoricalCtx is Historical bounded by ctx.
func (c *Client) HistoricalCtx(ctx context.Context, sensorID string, start, end time.Time) ([]DataSample, error) {
	q := url.Values{}
	q.Set("start", start.Format(time.RFC3339))
	q.Set("end", end.Format(time.RFC3339))
	var out []DataSample
	if err := c.get(ctx, "/ei_data/historical/"+url.PathEscape(sensorID), q, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Algorithms lists the node's registered scenario/name pairs.
func (c *Client) Algorithms() ([]string, error) {
	return c.AlgorithmsCtx(context.Background())
}

// AlgorithmsCtx is Algorithms bounded by ctx.
func (c *Client) AlgorithmsCtx(ctx context.Context) ([]string, error) {
	var out []string
	if err := c.get(ctx, "/ei_algorithms", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Models lists the node's loaded models with their modelled costs.
func (c *Client) Models() ([]ModelStatus, error) {
	return c.ModelsCtx(context.Background())
}

// ModelsCtx is Models bounded by ctx.
func (c *Client) ModelsCtx(ctx context.Context) ([]ModelStatus, error) {
	var out []ModelStatus
	if err := c.get(ctx, "/ei_models", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Status fetches node identity and capabilities.
func (c *Client) Status() (Status, error) {
	return c.StatusCtx(context.Background())
}

// StatusCtx is Status bounded by ctx.
func (c *Client) StatusCtx(ctx context.Context) (Status, error) {
	var out Status
	if err := c.get(ctx, "/ei_status", nil, &out); err != nil {
		return Status{}, err
	}
	return out, nil
}

// Resources fetches the node's computing resources: device capacity and
// live VCU allocations.
func (c *Client) Resources() (ResourceStatus, error) {
	return c.ResourcesCtx(context.Background())
}

// ResourcesCtx is Resources bounded by ctx.
func (c *Client) ResourcesCtx(ctx context.Context) (ResourceStatus, error) {
	var out ResourceStatus
	if err := c.get(ctx, "/ei_resources", nil, &out); err != nil {
		return ResourceStatus{}, err
	}
	return out, nil
}

// TraceCtx fetches one stored trace from the node (/ei_trace?id=). A
// 404 means the trace was unsampled or already evicted from the ring.
func (c *Client) TraceCtx(ctx context.Context, id string) (TraceDoc, error) {
	q := url.Values{}
	q.Set("id", id)
	var out TraceDoc
	if err := c.get(ctx, "/ei_trace", q, &out); err != nil {
		return TraceDoc{}, err
	}
	return out, nil
}

// Metrics fetches the node's serving counters (/ei_metrics).
func (c *Client) Metrics() (Metrics, error) {
	return c.MetricsCtx(context.Background())
}

// MetricsCtx is Metrics bounded by ctx.
func (c *Client) MetricsCtx(ctx context.Context) (Metrics, error) {
	var out Metrics
	if err := c.get(ctx, "/ei_metrics", nil, &out); err != nil {
		return Metrics{}, err
	}
	return out, nil
}

// ModelBlob downloads a serialized model — the edge–edge model-sharing
// path.
func (c *Client) ModelBlob(name string) ([]byte, error) {
	return c.ModelBlobCtx(context.Background(), name)
}

// ModelBlobCtx is ModelBlob bounded by ctx.
func (c *Client) ModelBlobCtx(ctx context.Context, name string) ([]byte, error) {
	u := c.BaseURL + "/ei_models/" + url.PathEscape(name) + "/blob"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("libei client: blob %s: %w", name, err)
	}
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	c.observe(start, err)
	if err != nil {
		return nil, fmt.Errorf("libei client: blob %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("libei client: blob %s: status %d: %s", name, resp.StatusCode, body)
	}
	return io.ReadAll(resp.Body)
}
