// Package libei implements the paper's libei component (§III.D): the
// RESTful API through which every resource of an OpenEI node — data,
// algorithms, models, computing state — is reachable by the cloud, other
// edges, and third-party developers.
//
// The URL scheme follows Figure 6 exactly:
//
//	GET /ei_algorithms/{scenario}/{algorithm}?{args}   — run an algorithm
//	GET /ei_data/realtime/{sensorID}?timestamp=...     — recent samples
//	GET /ei_data/historical/{sensorID}?start=..&end=.. — range query
//
// plus introspection endpoints the framework needs for collaboration:
//
//	GET /ei_models                — loaded models and their ALEM costs
//	GET /ei_status                — node identity, device, package
//	GET /ei_resources             — device capacity + live VCU allocations
//	GET /ei_metrics               — serving queue/batch/latency counters
//	GET /ei_models/{name}/blob    — serialized model download (edge–edge
//	                                and cloud–edge model exchange)
//
// When a serving engine is attached (SetEngine), the built-in algorithm
// /ei_algorithms/serving/infer runs micro-batched inference with admission
// control: overload is HTTP 429, an expired queue deadline is HTTP 408.
//
// Responses use a uniform JSON envelope {"ok":bool, "result":..., "error":...}.
package libei

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"openei/internal/autopilot"
	"openei/internal/datastore"
	"openei/internal/obs"
	"openei/internal/pkgmgr"
	"openei/internal/serving"
)

// Errors surfaced with specific HTTP statuses.
var (
	// ErrNotFound maps to 404.
	ErrNotFound = errors.New("libei: not found")
	// ErrBadRequest maps to 400.
	ErrBadRequest = errors.New("libei: bad request")
)

// AlgorithmFunc executes one algorithm invocation. The returned value is
// JSON-marshalled into the response envelope.
type AlgorithmFunc func(args url.Values) (any, error)

// Registration binds an algorithm to its scenario and name, giving the
// URL /ei_algorithms/{Scenario}/{Name}.
type Registration struct {
	Scenario string
	Name     string
	Fn       AlgorithmFunc
}

// Server is the libei HTTP handler for one OpenEI node.
type Server struct {
	// NodeID identifies this edge in /ei_status.
	NodeID string
	// Store serves /ei_data; may be nil if the node exposes no sensors.
	Store *datastore.Store
	// Manager serves /ei_models; may be nil.
	Manager *pkgmgr.Manager

	mu      sync.RWMutex
	algos   map[string]map[string]AlgorithmFunc
	engine  *serving.Engine
	inferer Inferer
	pilot   func() autopilot.Status
	tracer  *obs.Tracer

	vcu vcuHolder
}

// NewServer returns a Server for the node.
func NewServer(nodeID string, store *datastore.Store, mgr *pkgmgr.Manager) *Server {
	return &Server{
		NodeID:  nodeID,
		Store:   store,
		Manager: mgr,
		algos:   map[string]map[string]AlgorithmFunc{},
	}
}

// Register installs an algorithm; re-registering replaces the handler.
func (s *Server) Register(r Registration) error {
	if r.Scenario == "" || r.Name == "" || r.Fn == nil {
		return fmt.Errorf("%w: incomplete registration %+v", ErrBadRequest, r)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.algos[r.Scenario] == nil {
		s.algos[r.Scenario] = map[string]AlgorithmFunc{}
	}
	s.algos[r.Scenario][r.Name] = r.Fn
	return nil
}

// RegisterAll installs a batch of registrations.
func (s *Server) RegisterAll(rs []Registration) error {
	for _, r := range rs {
		if err := s.Register(r); err != nil {
			return err
		}
	}
	return nil
}

// Algorithms lists registered scenario/name pairs sorted lexically.
func (s *Server) Algorithms() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for sc, m := range s.algos {
		for name := range m {
			out = append(out, sc+"/"+name)
		}
	}
	sort.Strings(out)
	return out
}

// envelope is the uniform response wrapper.
type envelope struct {
	OK     bool   `json:"ok"`
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, env envelope) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(env)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound),
		errors.Is(err, datastore.ErrUnknownSensor),
		errors.Is(err, pkgmgr.ErrUnknownModel):
		status = http.StatusNotFound
	case errors.Is(err, ErrBadRequest), errors.Is(err, datastore.ErrBadRange),
		errors.Is(err, serving.ErrBadInput):
		status = http.StatusBadRequest
	case errors.Is(err, serving.ErrOverloaded):
		// Admission control shed the request; clients should back off and
		// retry (the serving engine's bounded queue is full).
		status = http.StatusTooManyRequests
	case errors.Is(err, serving.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		// Both faces of the same event: ErrDeadline when the pipeline shed
		// the expired request, DeadlineExceeded when the request context
		// lapsed first. The client sees one status either way.
		status = http.StatusRequestTimeout
	case errors.Is(err, serving.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, envelope{OK: false, Error: err.Error()})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, envelope{OK: false, Error: "only GET is supported"})
		return
	}
	parts := splitPath(r.URL.Path)
	switch {
	case len(parts) == 1 && parts[0] == "ei_algorithms":
		writeJSON(w, http.StatusOK, envelope{OK: true, Result: s.Algorithms()})
	case len(parts) == 3 && parts[0] == "ei_algorithms":
		s.handleAlgorithm(w, r, parts[1], parts[2])
	case len(parts) == 3 && parts[0] == "ei_data":
		s.handleData(w, r, parts[1], parts[2])
	case len(parts) == 1 && parts[0] == "ei_models":
		s.handleModels(w)
	case len(parts) == 3 && parts[0] == "ei_models" && parts[2] == "blob":
		s.handleModelBlob(w, parts[1])
	case len(parts) == 1 && parts[0] == "ei_status":
		s.handleStatus(w)
	case len(parts) == 1 && parts[0] == "ei_resources":
		s.handleResources(w)
	case len(parts) == 1 && parts[0] == "ei_metrics":
		s.handleMetrics(w)
	case len(parts) == 1 && parts[0] == "ei_trace":
		s.handleTrace(w, r)
	case len(parts) == 1 && parts[0] == "metrics":
		s.handleProm(w)
	default:
		writeErr(w, fmt.Errorf("%w: %s", ErrNotFound, r.URL.Path))
	}
}

func splitPath(p string) []string {
	var out []string
	for _, s := range strings.Split(p, "/") {
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

func (s *Server) handleAlgorithm(w http.ResponseWriter, r *http.Request, scenario, name string) {
	s.mu.RLock()
	fn := s.algos[scenario][name]
	s.mu.RUnlock()
	if fn == nil {
		writeErr(w, fmt.Errorf("%w: algorithm %s/%s", ErrNotFound, scenario, name))
		return
	}
	args := r.URL.Query()
	// AlgorithmFunc deliberately sees only url.Values; propagated trace
	// context rides in under a reserved key so the infer route can adopt
	// the caller's trace without widening the signature.
	if h := r.Header.Get(obs.TraceHeader); h != "" {
		args.Set(obs.TraceArg, h)
	}
	res, err := fn(args)
	if err != nil {
		writeErr(w, err)
		return
	}
	if ir, ok := res.(InferResult); ok && ir.TraceID != "" {
		w.Header().Set(obs.TraceHeader, ir.TraceID)
	}
	writeJSON(w, http.StatusOK, envelope{OK: true, Result: res})
}

// DataSample is the wire form of a datastore sample.
type DataSample struct {
	At      time.Time `json:"at"`
	Payload []float32 `json:"payload"`
}

func (s *Server) handleData(w http.ResponseWriter, r *http.Request, kind, sensorID string) {
	if s.Store == nil {
		writeErr(w, fmt.Errorf("%w: node has no datastore", ErrNotFound))
		return
	}
	q := r.URL.Query()
	var samples []datastore.Sample
	var err error
	switch kind {
	case "realtime":
		n := 1
		if raw := q.Get("n"); raw != "" {
			n, err = strconv.Atoi(raw)
			if err != nil || n <= 0 {
				writeErr(w, fmt.Errorf("%w: n=%q", ErrBadRequest, raw))
				return
			}
		}
		samples, err = s.Store.Realtime(sensorID, n)
	case "historical":
		var start, end time.Time
		start, err = parseTime(q.Get("start"))
		if err != nil {
			writeErr(w, fmt.Errorf("%w: start: %v", ErrBadRequest, err))
			return
		}
		end, err = parseTime(q.Get("end"))
		if err != nil {
			writeErr(w, fmt.Errorf("%w: end: %v", ErrBadRequest, err))
			return
		}
		samples, err = s.Store.Range(sensorID, start, end)
	default:
		writeErr(w, fmt.Errorf("%w: data type %q (want realtime or historical)", ErrBadRequest, kind))
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]DataSample, len(samples))
	for i, smp := range samples {
		out[i] = DataSample{At: smp.At, Payload: smp.Payload}
	}
	writeJSON(w, http.StatusOK, envelope{OK: true, Result: out})
}

func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, errors.New("missing timestamp")
	}
	return time.Parse(time.RFC3339, s)
}

// ModelStatus is the wire form of one loaded model's state.
type ModelStatus struct {
	Name      string  `json:"name"`
	LatencyMS float64 `json:"latency_ms"`
	EnergyJ   float64 `json:"energy_j"`
	MemoryMB  float64 `json:"memory_mb"`
}

func (s *Server) handleModels(w http.ResponseWriter) {
	if s.Manager == nil {
		writeErr(w, fmt.Errorf("%w: node has no package manager", ErrNotFound))
		return
	}
	var out []ModelStatus
	for _, name := range s.Manager.Models() {
		a, err := s.Manager.ALEMOf(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		out = append(out, ModelStatus{
			Name:      name,
			LatencyMS: float64(a.Latency) / float64(time.Millisecond),
			EnergyJ:   a.Energy,
			MemoryMB:  float64(a.Memory) / (1 << 20),
		})
	}
	writeJSON(w, http.StatusOK, envelope{OK: true, Result: out})
}

func (s *Server) handleModelBlob(w http.ResponseWriter, name string) {
	if s.Manager == nil {
		writeErr(w, fmt.Errorf("%w: node has no package manager", ErrNotFound))
		return
	}
	blob, err := s.Manager.Snapshot(name)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// Status is the wire form of /ei_status. Beyond node identity it carries
// the placement facts cluster membership gossips: the loaded-model set
// with per-representation weight bytes, and the device memory capacity —
// one status probe is both a heartbeat and a placement advertisement.
type Status struct {
	NodeID     string   `json:"node_id"`
	Device     string   `json:"device"`
	Package    string   `json:"package"`
	Algorithms []string `json:"algorithms"`
	Sensors    []string `json:"sensors"`
	// Models is the loaded-model set with deployed representation sizes
	// (int8 artifacts count at one byte per parameter).
	Models []pkgmgr.Placement `json:"models,omitempty"`
	// MemBytes is the device's RAM budget — the capacity signal a cluster
	// sharder weighs placements against.
	MemBytes int64 `json:"mem_bytes,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter) {
	st := Status{NodeID: s.NodeID, Algorithms: s.Algorithms()}
	if s.Manager != nil {
		st.Device = s.Manager.Device().Name
		st.Package = s.Manager.Package().Name
		st.Models = s.Manager.Placements()
		st.MemBytes = s.Manager.Device().MemBytes
	}
	if s.Store != nil {
		for _, info := range s.Store.Sensors() {
			st.Sensors = append(st.Sensors, info.ID)
		}
	}
	writeJSON(w, http.StatusOK, envelope{OK: true, Result: st})
}
