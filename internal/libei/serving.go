package libei

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"openei/internal/autopilot"
	"openei/internal/obs"
	"openei/internal/parallel"
	"openei/internal/serving"
	"openei/internal/tensor"
)

// Inferer is the serving entry point the infer route dispatches through.
// The engine itself satisfies it; an autopilot.Pilot satisfies it too,
// adding SLO-driven tier routing and edge→cloud offload in front of the
// same engine.
type Inferer interface {
	Infer(ctx context.Context, model string, x *tensor.Tensor) (serving.Result, error)
	InferWithDeadline(model string, x *tensor.Tensor, d time.Duration) (serving.Result, error)
}

// SetEngine attaches the serving engine: the high-throughput inference
// path. It registers the built-in algorithm
//
//	GET /ei_algorithms/serving/infer?model={name}&input={csv}[&deadline_ms=N][&tenant=name]
//
// which coalesces concurrent callers into micro-batches, and enables
// GET /ei_metrics, the queue/batch/latency counters. Under overload the
// infer route rejects with HTTP 429; a request whose deadline lapses in the
// queue gets HTTP 408. The tenant parameter selects the admission and
// scheduling class configured in serving.Config.Tenants; unknown or
// missing tenants ride the default class.
func (s *Server) SetEngine(e *serving.Engine) {
	s.mu.Lock()
	s.engine = e
	s.mu.Unlock()
	_ = s.Register(Registration{Scenario: "serving", Name: "infer", Fn: s.servingInfer})
}

// Engine returns the attached serving engine, or nil.
func (s *Server) Engine() *serving.Engine {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine
}

// SetInferer routes /ei_algorithms/serving/infer through i instead of the
// raw engine; pass nil to restore direct engine dispatch. SetEngine must
// still be called so /ei_metrics has the engine's counters. Any autopilot
// status hook is cleared: /ei_metrics must not keep advertising a pilot
// the serving path no longer flows through.
func (s *Server) SetInferer(i Inferer) {
	s.mu.Lock()
	s.inferer = i
	s.pilot = nil
	s.mu.Unlock()
}

// SetAutopilot hooks a pilot into the node: the infer route dispatches
// through it (tier routing + offload) and /ei_metrics gains its Status
// under "autopilot". A nil pilot detaches both.
func (s *Server) SetAutopilot(p *autopilot.Pilot) {
	if p == nil {
		s.SetInferer(nil)
		return
	}
	s.mu.Lock()
	s.inferer = p
	s.pilot = p.Status
	s.mu.Unlock()
}

// inferDispatch returns the configured Inferer, falling back to the
// engine; nil when neither is attached.
func (s *Server) inferDispatch() Inferer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.inferer != nil {
		return s.inferer
	}
	if s.engine != nil {
		return s.engine
	}
	return nil
}

// InferResult is the wire form of one batched inference answer.
type InferResult struct {
	Model      string  `json:"model"`
	Class      int     `json:"class"`
	Confidence float64 `json:"confidence"`
	BatchSize  int     `json:"batch_size"`
	QueuedMS   float64 `json:"queued_ms"`
	LatencyMS  float64 `json:"model_latency_ms"`
	// StepsUsed/TotalSteps report adaptive computation on early-exit
	// plans: the recurrent steps this sample actually consumed out of the
	// compiled window. Both are 0 for feed-forward models; StepsUsed ==
	// TotalSteps when early exit is disabled or the sample never crossed
	// the confidence threshold.
	StepsUsed  int `json:"steps_used,omitempty"`
	TotalSteps int `json:"total_steps,omitempty"`
	// ServedBy is the model that actually answered: the active autopilot
	// tier under a Swap route, or "cloud:{model}" when the request was
	// offloaded.
	ServedBy string `json:"served_by,omitempty"`
	// Offloaded marks answers executed on the cloud fallback.
	Offloaded bool `json:"offloaded,omitempty"`
	// TraceID is the request's trace ID (present when the node has a
	// tracer attached); resolve it at /ei_trace?id= — or /gw_trace?id=
	// for the stitched cross-process view when the request came through a
	// gateway. Sampling decides whether the trace was *stored*; the ID is
	// always reported so a slow answer can at least be looked up.
	TraceID string `json:"trace_id,omitempty"`
}

// servingInfer backs /ei_algorithms/serving/infer.
func (s *Server) servingInfer(args url.Values) (any, error) {
	e := s.inferDispatch()
	if e == nil {
		return nil, fmt.Errorf("%w: node has no serving engine", ErrNotFound)
	}
	model := args.Get("model")
	if model == "" {
		return nil, fmt.Errorf("%w: missing model parameter", ErrBadRequest)
	}
	raw := args.Get("input")
	if raw == "" {
		return nil, fmt.Errorf("%w: missing input parameter", ErrBadRequest)
	}
	fields := strings.Split(raw, ",")
	data := make([]float32, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
		if err != nil {
			return nil, fmt.Errorf("%w: input[%d]=%q", ErrBadRequest, i, f)
		}
		data[i] = float32(v)
	}
	x, err := tensor.NewFrom(data, len(data))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// Tenant and deadline both travel on the context so they survive any
	// dispatch path — raw engine or autopilot pilot — without widening the
	// Inferer interface.
	ctx := serving.WithTenant(context.Background(), args.Get("tenant"))
	if rawMS := args.Get("deadline_ms"); rawMS != "" {
		ms, err := strconv.ParseFloat(rawMS, 64)
		if err != nil || ms <= 0 {
			return nil, fmt.Errorf("%w: deadline_ms=%q", ErrBadRequest, rawMS)
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.Now().Add(time.Duration(ms*float64(time.Millisecond))))
		defer cancel()
	}
	// The node-side trace: adopt gateway-propagated context (same trace
	// ID, same sampling verdict) or start a fresh trace for direct
	// clients. The trace buffer rides the same context as the tenant, so
	// serving-pipeline and autopilot-offload spans land without interface
	// changes. All obs calls are nil-safe no-ops when no tracer is set.
	tracer := s.Tracer()
	tc, _ := obs.ParseTraceContext(args.Get(obs.TraceArg))
	tb := tracer.Begin(tc)
	// The root span ID is allocated up front so pipeline-stage spans can
	// parent to it; the completed span is recorded once the infer returns.
	root := tracer.NextID()
	tb.SetRoot(root)
	ctx = obs.NewContext(ctx, tb)
	start := time.Now()
	res, err := e.Infer(ctx, model, x)
	total := time.Since(start)
	tb.AddWithID(root, obs.StageInfer, tb.Parent(), start, total,
		obs.Str("model", model), obs.Str("node", s.NodeID))
	tracer.Finish(tb, err != nil, total)
	if err != nil {
		return nil, err
	}
	return InferResult{
		Model:      model,
		Class:      res.Class,
		Confidence: res.Confidence,
		BatchSize:  res.BatchSize,
		QueuedMS:   float64(res.Queued) / float64(time.Millisecond),
		LatencyMS:  float64(res.ModelLatency) / float64(time.Millisecond),
		StepsUsed:  res.StepsUsed,
		TotalSteps: res.TotalSteps,
		ServedBy:   res.Model,
		Offloaded:  strings.HasPrefix(res.Model, "cloud:"),
		TraceID:    tb.IDString(),
	}, nil
}

// RemoteOffloader executes autopilot offloads on a remote serving
// endpoint — another edge, a gateway, or an openei-cloud instance running
// a serving tier. It satisfies autopilot.Offloader.
type RemoteOffloader struct {
	// Client talks to the fallback node's libei API.
	Client *Client
	// Model, when non-empty, overrides the model name requested remotely
	// (the cloud may publish the tier ladder's base model under a
	// different alias).
	Model string
}

// Offload implements autopilot.Offloader.
func (o *RemoteOffloader) Offload(ctx context.Context, model string, input []float32, deadline time.Duration) (int, float64, error) {
	name := o.Model
	if name == "" {
		name = model
	}
	res, err := o.Client.InferCtx(ctx, name, input, deadline)
	if err != nil {
		return 0, 0, err
	}
	return res.Class, res.Confidence, nil
}

// Metrics is the wire form of /ei_metrics.
type Metrics struct {
	NodeID string `json:"node_id"`
	// Serving is per-model queue/batch/latency counters; empty when no
	// model has been served yet, null when no engine is attached.
	Serving []serving.ModelStats `json:"serving"`
	// Tenants is the per-tenant admission/scheduling counter set
	// (admitted, shed, expired, served, latency quantiles), highest
	// priority first; omitted when no engine is attached. The chaos
	// harness asserts SLO attainment and shed confinement against it.
	Tenants []serving.TenantStats `json:"tenants,omitempty"`
	// QueueDepth and QueueCap are the serving engine's aggregate queue
	// fill across models — the cheap signal a gateway reads for
	// least-loaded routing without walking the per-model stats.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// SchedulerPending is the package manager's real-time queue backlog.
	SchedulerPending int `json:"scheduler_pending"`
	// Parallel is the process-wide kernel pool: width, grain, job/shard
	// counters, and utilization (busy worker time over pool capacity).
	Parallel parallel.Stats `json:"parallel"`
	// Autopilot is the SLO control loop's state (current tier, switch
	// history, offload ratio, SLO attainment); absent when no pilot is
	// attached. A gateway reads tier_index from it to prefer nodes still
	// serving their high-accuracy tier.
	Autopilot *autopilot.Status `json:"autopilot,omitempty"`
	// Trace is the request tracer's sampling/retention counters; absent
	// when no tracer is attached.
	Trace *obs.Stats `json:"trace,omitempty"`
}

// metricsSnapshot builds the one metrics document both views serve:
// /ei_metrics marshals it as JSON and /metrics renders the same value in
// Prometheus exposition format — a field added here appears in both.
func (s *Server) metricsSnapshot() Metrics {
	m := Metrics{NodeID: s.NodeID, Parallel: parallel.Snapshot()}
	if s.Manager != nil {
		m.SchedulerPending = s.Manager.PendingJobs()
	}
	if e := s.Engine(); e != nil {
		m.Serving = e.Stats()
		if m.Serving == nil {
			m.Serving = []serving.ModelStats{}
		}
		m.QueueDepth, m.QueueCap = e.QueueDepth()
		m.Tenants = e.TenantStats()
	}
	s.mu.RLock()
	pilot := s.pilot
	tracer := s.tracer
	s.mu.RUnlock()
	if pilot != nil {
		st := pilot()
		m.Autopilot = &st
	}
	if tracer != nil {
		st := tracer.Stats()
		m.Trace = &st
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, envelope{OK: true, Result: s.metricsSnapshot()})
}
