package libei

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"openei/internal/parallel"
	"openei/internal/serving"
	"openei/internal/tensor"
)

// SetEngine attaches the serving engine: the high-throughput inference
// path. It registers the built-in algorithm
//
//	GET /ei_algorithms/serving/infer?model={name}&input={csv}[&deadline_ms=N]
//
// which coalesces concurrent callers into micro-batches, and enables
// GET /ei_metrics, the queue/batch/latency counters. Under overload the
// infer route rejects with HTTP 429; a request whose deadline lapses in the
// queue gets HTTP 408.
func (s *Server) SetEngine(e *serving.Engine) {
	s.mu.Lock()
	s.engine = e
	s.mu.Unlock()
	_ = s.Register(Registration{Scenario: "serving", Name: "infer", Fn: s.servingInfer})
}

// Engine returns the attached serving engine, or nil.
func (s *Server) Engine() *serving.Engine {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine
}

// InferResult is the wire form of one batched inference answer.
type InferResult struct {
	Model      string  `json:"model"`
	Class      int     `json:"class"`
	Confidence float64 `json:"confidence"`
	BatchSize  int     `json:"batch_size"`
	QueuedMS   float64 `json:"queued_ms"`
	LatencyMS  float64 `json:"model_latency_ms"`
}

// servingInfer backs /ei_algorithms/serving/infer.
func (s *Server) servingInfer(args url.Values) (any, error) {
	e := s.Engine()
	if e == nil {
		return nil, fmt.Errorf("%w: node has no serving engine", ErrNotFound)
	}
	model := args.Get("model")
	if model == "" {
		return nil, fmt.Errorf("%w: missing model parameter", ErrBadRequest)
	}
	raw := args.Get("input")
	if raw == "" {
		return nil, fmt.Errorf("%w: missing input parameter", ErrBadRequest)
	}
	fields := strings.Split(raw, ",")
	data := make([]float32, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
		if err != nil {
			return nil, fmt.Errorf("%w: input[%d]=%q", ErrBadRequest, i, f)
		}
		data[i] = float32(v)
	}
	x, err := tensor.NewFrom(data, len(data))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var res serving.Result
	if rawMS := args.Get("deadline_ms"); rawMS != "" {
		ms, err := strconv.ParseFloat(rawMS, 64)
		if err != nil || ms <= 0 {
			return nil, fmt.Errorf("%w: deadline_ms=%q", ErrBadRequest, rawMS)
		}
		res, err = e.InferWithDeadline(model, x, time.Duration(ms*float64(time.Millisecond)))
		if err != nil {
			return nil, err
		}
	} else {
		res, err = e.Infer(context.Background(), model, x)
		if err != nil {
			return nil, err
		}
	}
	return InferResult{
		Model:      model,
		Class:      res.Class,
		Confidence: res.Confidence,
		BatchSize:  res.BatchSize,
		QueuedMS:   float64(res.Queued) / float64(time.Millisecond),
		LatencyMS:  float64(res.ModelLatency) / float64(time.Millisecond),
	}, nil
}

// Metrics is the wire form of /ei_metrics.
type Metrics struct {
	NodeID string `json:"node_id"`
	// Serving is per-model queue/batch/latency counters; empty when no
	// model has been served yet, null when no engine is attached.
	Serving []serving.ModelStats `json:"serving"`
	// QueueDepth and QueueCap are the serving engine's aggregate queue
	// fill across models — the cheap signal a gateway reads for
	// least-loaded routing without walking the per-model stats.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// SchedulerPending is the package manager's real-time queue backlog.
	SchedulerPending int `json:"scheduler_pending"`
	// Parallel is the process-wide kernel pool: width, grain, job/shard
	// counters, and utilization (busy worker time over pool capacity).
	Parallel parallel.Stats `json:"parallel"`
}

func (s *Server) handleMetrics(w http.ResponseWriter) {
	m := Metrics{NodeID: s.NodeID, Parallel: parallel.Snapshot()}
	if s.Manager != nil {
		m.SchedulerPending = s.Manager.PendingJobs()
	}
	if e := s.Engine(); e != nil {
		m.Serving = e.Stats()
		if m.Serving == nil {
			m.Serving = []serving.ModelStats{}
		}
		m.QueueDepth, m.QueueCap = e.QueueDepth()
	}
	writeJSON(w, http.StatusOK, envelope{OK: true, Result: m})
}
