package libei

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/autopilot"
	"openei/internal/hardware"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/serving"
)

// tieredNode builds a libei server whose manager holds a two-tier model
// ladder (heavy and light share the 1024-element input).
func tieredNode(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	mgr := pkgmgr.New(pkg, dev)
	t.Cleanup(mgr.Close)
	rng := rand.New(rand.NewSource(5))
	for name, hidden := range map[string]int{"heavy": 256, "light": 16} {
		m := nn.MustModel(name, []int{1024}, []nn.LayerSpec{
			{Type: "dense", In: 1024, Out: hidden},
			{Type: "relu"},
			{Type: "dense", In: hidden, Out: 4},
		})
		m.InitParams(rng)
		if err := mgr.Load(m, pkgmgr.LoadOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer("edge-1", nil, mgr)
	e := serving.NewEngine(mgr, serving.Config{Replicas: 1, MaxBatch: 2})
	t.Cleanup(e.Close)
	s.SetEngine(e)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// TestAutopilotWiring: with a pilot attached, the infer route dispatches
// through it (served_by reports the active tier after a downgrade) and
// /ei_metrics carries the pilot's status block with its switch history.
func TestAutopilotWiring(t *testing.T) {
	s, ts := tieredNode(t)
	tiers := []autopilot.TierSpec{
		{Model: "heavy", Accuracy: 0.95, Latency: 5 * time.Millisecond},
		{Model: "light", Accuracy: 0.91, Latency: time.Millisecond},
	}
	pol := autopilot.Policy{P95: 10 * time.Millisecond, Interval: time.Hour, DowngradeAfter: 1}
	p, err := autopilot.New(s.Engine(), "heavy", tiers, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	s.SetAutopilot(p)

	c := NewClient(ts.URL)
	input := make([]float32, 1024)
	input[3] = 1
	res, err := c.Infer("heavy", input, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "heavy" || res.Offloaded {
		t.Errorf("top tier answer = %+v", res)
	}

	// Force a downgrade through the engine actuator and confirm the wire
	// answer names the serving tier while the client-facing model name is
	// unchanged.
	if err := s.Engine().Swap("heavy", "light"); err != nil {
		t.Fatal(err)
	}
	res, err = c.Infer("heavy", input, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "heavy" || res.ServedBy != "light" {
		t.Errorf("downgraded answer = %+v, want model heavy served_by light", res)
	}

	// A control step on an idle pipeline is a quiet tick; the status block
	// must surface through /ei_metrics.
	p.Step(time.Now())
	m, err := c.MetricsCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Autopilot == nil {
		t.Fatal("metrics missing autopilot block")
	}
	if m.Autopilot.Alias != "heavy" || m.Autopilot.Ticks != 1 {
		t.Errorf("autopilot block = %+v", m.Autopilot)
	}
	if len(m.Autopilot.Tiers) != 2 {
		t.Errorf("tier ladder = %+v", m.Autopilot.Tiers)
	}
}
