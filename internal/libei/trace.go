package libei

import (
	"fmt"
	"net/http"
	"sort"

	"openei/internal/obs"
	"openei/internal/serving"
)

// Tracing and Prometheus exposition for the node API:
//
//	GET /ei_trace            — recently kept trace IDs
//	GET /ei_trace?id={hex}   — one stored trace's spans
//	GET /metrics             — Prometheus text exposition (format 0.0.4)
//	                           of the same snapshot /ei_metrics serves
//
// Trace context arrives on the X-Openei-Trace request header (injected
// into algorithm args as the reserved _trace key) and the served trace ID
// is echoed back in the same response header plus the infer result's
// trace_id field.

// SetTracer attaches the node's request tracer: the infer route begins a
// trace per request (adopting gateway-propagated context when present),
// /ei_trace serves stored spans, and /ei_metrics gains the tracer's
// counters. A nil tracer detaches tracing; the endpoints 404.
func (s *Server) SetTracer(t *obs.Tracer) {
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
}

// Tracer returns the attached tracer, or nil.
func (s *Server) Tracer() *obs.Tracer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tracer
}

// TraceDoc is the wire form of /ei_trace?id= and /gw_trace?id=: every
// stored span of one trace. A gateway-stitched document contains spans
// from multiple sources (the gateway's own plus each serving node's).
type TraceDoc struct {
	TraceID string         `json:"trace_id"`
	Spans   []obs.WireSpan `json:"spans"`
}

// SortSpans orders a stitched document by start time (stable and
// readable; the parent IDs carry the tree structure).
func (d *TraceDoc) SortSpans() {
	sort.SliceStable(d.Spans, func(i, j int) bool {
		return d.Spans[i].StartUnixNS < d.Spans[j].StartUnixNS
	})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t := s.Tracer()
	if t == nil {
		writeErr(w, fmt.Errorf("%w: node has no tracer", ErrNotFound))
		return
	}
	raw := r.URL.Query().Get("id")
	if raw == "" {
		writeJSON(w, http.StatusOK, envelope{OK: true, Result: t.RecentIDs(32)})
		return
	}
	id, ok := obs.ParseID(raw)
	if !ok {
		writeErr(w, fmt.Errorf("%w: id=%q", ErrBadRequest, raw))
		return
	}
	spans, ok := t.Trace(id)
	if !ok {
		writeErr(w, fmt.Errorf("%w: trace %s not stored (unsampled or evicted)", ErrNotFound, raw))
		return
	}
	doc := TraceDoc{TraceID: obs.IDString(id), Spans: spans}
	doc.SortSpans()
	writeJSON(w, http.StatusOK, envelope{OK: true, Result: doc})
}

// handleProm renders the /ei_metrics snapshot — the same struct, built by
// the same code path — in Prometheus exposition format, plus the raw HDR
// histogram buckets the JSON view only summarizes.
func (s *Server) handleProm(w http.ResponseWriter) {
	m := s.metricsSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteProm(w, "openei", m)
	if e := s.Engine(); e != nil {
		obs.WriteHistograms(w, PromHistograms(e.HistogramExports()))
	}
}

// PromHistograms converts the serving engine's raw histogram exports to
// renderable Prometheus histograms: per-model families under
// openei_serving_<stage>_ms{model=...}, per-tenant under
// openei_tenant_<stage>_ms{tenant=...}.
func PromHistograms(exports []serving.HistogramExport) []obs.Histogram {
	out := make([]obs.Histogram, 0, len(exports))
	for _, e := range exports {
		group := "serving"
		if e.Label == "tenant" {
			group = "tenant"
		}
		uppers, cums := e.Snap.CumBuckets()
		out = append(out, obs.Histogram{
			Name:      "openei_" + group + "_" + e.Stage + "_ms",
			Labels:    []obs.Label{{Key: e.Label, Value: e.Value}},
			UpperMS:   uppers,
			CumCounts: cums,
			Count:     e.Snap.Count,
			SumMS:     float64(e.SumNS) / 1e6,
		})
	}
	return out
}
