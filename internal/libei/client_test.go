package libei

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestTypedStatusErrors: non-2xx responses carry a StatusError that
// unwraps to the typed sentinel for the status, so a gateway (or any
// caller) branches with errors.Is instead of string-matching.
func TestTypedStatusErrors(t *testing.T) {
	for _, tc := range []struct {
		status int
		want   error
	}{
		{http.StatusTooManyRequests, ErrOverloaded},
		{http.StatusRequestTimeout, ErrDeadline},
		{http.StatusServiceUnavailable, ErrUnavailable},
	} {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(tc.status)
			_, _ = w.Write([]byte(`{"ok":false,"error":"nope"}`))
		}))
		c := NewClient(ts.URL)
		_, err := c.Infer("m", []float32{1}, 0)
		ts.Close()
		if !errors.Is(err, tc.want) {
			t.Errorf("status %d: errors.Is(%v, %v) = false", tc.status, err, tc.want)
		}
		var se *StatusError
		if !errors.As(err, &se) || se.Code != tc.status || se.Message != "nope" {
			t.Errorf("status %d: StatusError = %+v", tc.status, se)
		}
	}
	// A status with no sentinel still surfaces as a StatusError with the
	// code, and matches none of the typed errors.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	_, err := c.Status()
	if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDeadline) || errors.Is(err, ErrUnavailable) {
		t.Errorf("502 matched a typed sentinel: %v", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadGateway {
		t.Errorf("502 StatusError = %+v", se)
	}
}

// TestForwardAndStats: Forward returns the verbatim status/body without
// envelope interpretation, and the client's transport counters track it.
func TestForwardAndStats(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.RawQuery != "x=1" {
			t.Errorf("query = %q, want x=1", r.URL.RawQuery)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTeapot)
		_, _ = w.Write([]byte(`{"ok":false,"error":"teapot"}`))
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	res, err := c.Forward(context.Background(), "/ei_algorithms/serving/infer?x=1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusTeapot || res.ContentType != "application/json" ||
		string(res.Body) != `{"ok":false,"error":"teapot"}` {
		t.Errorf("forward result = %+v", res)
	}
	if s := c.Stats(); s.Requests != 1 || s.TransportErrors != 0 {
		t.Errorf("stats after forward = %+v", s)
	}

	dead := NewClient("http://127.0.0.1:1")
	if _, err := dead.Forward(context.Background(), "/ei_status"); err == nil {
		t.Error("forward to dead address: want transport error")
	}
	if s := dead.Stats(); s.Requests != 1 || s.TransportErrors != 1 {
		t.Errorf("stats after transport failure = %+v", s)
	}
}
