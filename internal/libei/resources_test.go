package libei

import (
	"net/http/httptest"
	"testing"

	"openei/internal/hardware"
	"openei/internal/runenv"
)

func TestResourcesEndpointWithoutVCU(t *testing.T) {
	_, ts := testNode(t)
	c := NewClient(ts.URL)
	rs, err := c.Resources()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Device != "rpi4" || rs.Class != "sbc" {
		t.Errorf("device = %s/%s", rs.Device, rs.Class)
	}
	if rs.ComputeFreePct != 100 || rs.ComputeUsedPct != 0 {
		t.Errorf("compute = used %.0f free %.0f", rs.ComputeUsedPct, rs.ComputeFreePct)
	}
	if rs.MemoryUsedMB != 0 || rs.MemoryFreeMB != rs.MemoryTotalMB {
		t.Errorf("memory = %+v", rs)
	}
	if len(rs.Allocations) != 0 {
		t.Errorf("allocations = %v", rs.Allocations)
	}
}

func TestResourcesEndpointReportsVCUAllocations(t *testing.T) {
	s, ts := testNode(t)
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	vcu := runenv.NewVCU(dev)
	if _, err := vcu.Allocate(runenv.Request{App: "safety", ComputeShare: 0.6, MemBytes: 64 << 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := vcu.Allocate(runenv.Request{App: "vehicles", ComputeShare: 0.2, MemBytes: 32 << 20}); err != nil {
		t.Fatal(err)
	}
	s.SetVCU(vcu)

	rs, err := NewClient(ts.URL).Resources()
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.ComputeUsedPct; got < 79.9 || got > 80.1 {
		t.Errorf("compute used = %.1f%%, want 80%%", got)
	}
	if got := rs.MemoryUsedMB; got != 96 {
		t.Errorf("memory used = %.1f MB, want 96", got)
	}
	if len(rs.Allocations) != 2 {
		t.Fatalf("allocations = %v", rs.Allocations)
	}
	if rs.Allocations[0].App != "safety" || rs.Allocations[1].App != "vehicles" {
		t.Errorf("allocation order: %v", rs.Allocations)
	}

	// Detaching the VCU falls back to bare device capacity.
	s.SetVCU(nil)
	rs, err = NewClient(ts.URL).Resources()
	if err != nil {
		t.Fatal(err)
	}
	if rs.ComputeUsedPct != 0 || len(rs.Allocations) != 0 {
		t.Errorf("after detach: %+v", rs)
	}
}

func TestResourcesEndpointNoBackends(t *testing.T) {
	s := NewServer("bare", nil, nil)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	if _, err := NewClient(ts.URL).Resources(); err == nil {
		t.Fatal("want error when node has neither VCU nor manager")
	}
}
