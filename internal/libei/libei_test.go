package libei

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/datastore"
	"openei/internal/hardware"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
)

var t0 = time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)

func testNode(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	store := datastore.New(16)
	if err := store.Register(datastore.SensorInfo{ID: "camera1", Kind: "camera", Dim: 4}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := store.Append("camera1", datastore.Sample{
			At:      t0.Add(time.Duration(i) * time.Second),
			Payload: []float32{float32(i), 0, 0, 0},
		}); err != nil {
			t.Fatal(err)
		}
	}
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	mgr := pkgmgr.New(pkg, dev)
	t.Cleanup(mgr.Close)
	model := nn.MustModel("tiny", []int{4}, []nn.LayerSpec{{Type: "dense", In: 4, Out: 2}})
	model.InitParams(rand.New(rand.NewSource(1)))
	if err := mgr.Load(model, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	s := NewServer("edge-1", store, mgr)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestStatusEndpoint(t *testing.T) {
	_, ts := testNode(t)
	c := NewClient(ts.URL)
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.NodeID != "edge-1" || st.Device != "rpi4" || st.Package != "eipkg" {
		t.Errorf("Status = %+v", st)
	}
	if len(st.Sensors) != 1 || st.Sensors[0] != "camera1" {
		t.Errorf("sensors = %v", st.Sensors)
	}
}

// TestStatusCarriesPlacement asserts /ei_status advertises the loaded-model
// set with per-representation weight bytes and the device capacity — the
// facts cluster membership gossip rides on instead of a second probe.
func TestStatusCarriesPlacement(t *testing.T) {
	s, ts := testNode(t)
	quant := nn.MustModel("tiny-int8", []int{4}, []nn.LayerSpec{{Type: "dense", In: 4, Out: 2}})
	quant.InitParams(rand.New(rand.NewSource(2)))
	if err := s.Manager.Load(quant, pkgmgr.LoadOptions{Quantize: true}); err != nil {
		t.Fatal(err)
	}
	st, err := NewClient(ts.URL).Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Models) != 2 || st.Models[0].Name != "tiny" || st.Models[1].Name != "tiny-int8" {
		t.Fatalf("models = %+v", st.Models)
	}
	fp32, int8 := st.Models[0], st.Models[1]
	if fp32.Quantized || fp32.WeightBytes <= 0 {
		t.Errorf("float placement = %+v", fp32)
	}
	if !int8.Quantized {
		t.Errorf("quantized placement = %+v", int8)
	}
	// Same architecture: the int8 representation must be reported smaller
	// (≈¼ the bytes), not at its calibration-float size.
	if int8.WeightBytes >= fp32.WeightBytes {
		t.Errorf("int8 weight bytes %d ≥ float %d", int8.WeightBytes, fp32.WeightBytes)
	}
	dev, _ := hardware.ByName("rpi4")
	if st.MemBytes != dev.MemBytes {
		t.Errorf("mem_bytes = %d, want device capacity %d", st.MemBytes, dev.MemBytes)
	}
}

func TestAlgorithmEndpointFigure6(t *testing.T) {
	s, ts := testNode(t)
	err := s.Register(Registration{
		Scenario: "safety", Name: "detection",
		Fn: func(args url.Values) (any, error) {
			return map[string]string{"video": args.Get("video"), "verdict": "ok"}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the Figure 6 URL shape.
	resp, err := http.Get(ts.URL + "/ei_algorithms/safety/detection?video=camera1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var env struct {
		OK     bool              `json:"ok"`
		Result map[string]string `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if !env.OK || env.Result["video"] != "camera1" {
		t.Errorf("envelope = %+v", env)
	}
}

func TestAlgorithmNotFound(t *testing.T) {
	_, ts := testNode(t)
	resp, err := http.Get(ts.URL + "/ei_algorithms/safety/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestAlgorithmErrorPropagates(t *testing.T) {
	s, ts := testNode(t)
	if err := s.Register(Registration{
		Scenario: "t", Name: "boom",
		Fn: func(url.Values) (any, error) { return nil, ErrBadRequest },
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/ei_algorithms/t/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestRealtimeDataEndpoint(t *testing.T) {
	_, ts := testNode(t)
	c := NewClient(ts.URL)
	samples, err := c.Realtime("camera1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	if samples[2].Payload[0] != 4 {
		t.Errorf("latest sample payload = %v, want 4", samples[2].Payload[0])
	}
}

func TestHistoricalDataEndpoint(t *testing.T) {
	_, ts := testNode(t)
	c := NewClient(ts.URL)
	samples, err := c.Historical("camera1", t0.Add(time.Second), t0.Add(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3 (inclusive range)", len(samples))
	}
}

func TestDataEndpointErrors(t *testing.T) {
	_, ts := testNode(t)
	tests := []struct {
		path string
		want int
	}{
		{"/ei_data/realtime/ghost", http.StatusNotFound},
		{"/ei_data/realtime/camera1?n=-3", http.StatusBadRequest},
		{"/ei_data/realtime/camera1?n=abc", http.StatusBadRequest},
		{"/ei_data/historical/camera1?start=bad&end=bad", http.StatusBadRequest},
		{"/ei_data/historical/camera1", http.StatusBadRequest},
		{"/ei_data/nope/camera1", http.StatusBadRequest},
		{"/totally/wrong/path", http.StatusNotFound},
	}
	for _, tt := range tests {
		resp, err := http.Get(ts.URL + tt.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tt.want {
			t.Errorf("%s: status = %d, want %d", tt.path, resp.StatusCode, tt.want)
		}
	}
}

func TestOnlyGET(t *testing.T) {
	_, ts := testNode(t)
	resp, err := http.Post(ts.URL+"/ei_status", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestModelsEndpoint(t *testing.T) {
	_, ts := testNode(t)
	c := NewClient(ts.URL)
	models, err := c.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Name != "tiny" {
		t.Fatalf("Models = %+v", models)
	}
	if models[0].LatencyMS <= 0 || models[0].MemoryMB <= 0 {
		t.Errorf("missing ALEM costs: %+v", models[0])
	}
}

func TestModelBlobRoundTrip(t *testing.T) {
	_, ts := testNode(t)
	c := NewClient(ts.URL)
	blob, err := c.ModelBlob("tiny")
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.DecodeModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "tiny" {
		t.Errorf("decoded model name = %q", m.Name)
	}
	if _, err := c.ModelBlob("ghost"); err == nil {
		t.Error("blob of unknown model should fail")
	}
}

func TestRegisterValidation(t *testing.T) {
	s := NewServer("x", nil, nil)
	if err := s.Register(Registration{}); err == nil {
		t.Error("empty registration should fail")
	}
	if err := s.RegisterAll([]Registration{{Scenario: "a", Name: "b", Fn: func(url.Values) (any, error) { return nil, nil }}, {}}); err == nil {
		t.Error("RegisterAll with bad entry should fail")
	}
}

func TestAlgorithmsListing(t *testing.T) {
	s := NewServer("x", nil, nil)
	for _, pair := range [][2]string{{"b", "z"}, {"a", "y"}, {"a", "x"}} {
		if err := s.Register(Registration{Scenario: pair[0], Name: pair[1], Fn: func(url.Values) (any, error) { return nil, nil }}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Algorithms()
	want := []string{"a/x", "a/y", "b/z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Algorithms = %v, want %v", got, want)
		}
	}
}

func TestNodeWithoutStoreOrManager(t *testing.T) {
	s := NewServer("bare", nil, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	for _, path := range []string{"/ei_data/realtime/x", "/ei_models"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s on bare node: status = %d, want 404", path, resp.StatusCode)
		}
	}
	// Status still works.
	c := NewClient(ts.URL)
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.NodeID != "bare" {
		t.Errorf("Status = %+v", st)
	}
}

func TestAlgorithmListingEndpoint(t *testing.T) {
	s, ts := testNode(t)
	for _, pair := range [][2]string{{"safety", "detection"}, {"home", "power_monitor"}} {
		if err := s.Register(Registration{Scenario: pair[0], Name: pair[1], Fn: func(url.Values) (any, error) { return nil, nil }}); err != nil {
			t.Fatal(err)
		}
	}
	c := NewClient(ts.URL)
	algos, err := c.Algorithms()
	if err != nil {
		t.Fatal(err)
	}
	if len(algos) != 2 || algos[0] != "home/power_monitor" || algos[1] != "safety/detection" {
		t.Errorf("Algorithms = %v", algos)
	}
}
