package libei

import (
	"fmt"
	"net/http"
	"sync"

	"openei/internal/runenv"
)

// The paper's §III.D says "every resource, including the data, computing
// resource, and models, are represented by a URL". /ei_data and
// /ei_models cover the first and last; this file adds the middle one:
//
//	GET /ei_resources — the node's computing resources: device capacity
//	and the live VCU allocations (which application holds which share).

// AllocationStatus is the wire form of one VCU allocation.
type AllocationStatus struct {
	App      string  `json:"app"`
	SharePct float64 `json:"share_pct"`
	MemoryMB float64 `json:"memory_mb"`
}

// ResourceStatus is the wire form of /ei_resources.
type ResourceStatus struct {
	Device string  `json:"device"`
	Class  string  `json:"class"`
	FLOPS  float64 `json:"flops"`
	// Compute shares, in percent of the device.
	ComputeUsedPct float64 `json:"compute_used_pct"`
	ComputeFreePct float64 `json:"compute_free_pct"`
	// Memory, in MB.
	MemoryTotalMB float64 `json:"memory_total_mb"`
	MemoryUsedMB  float64 `json:"memory_used_mb"`
	MemoryFreeMB  float64 `json:"memory_free_mb"`
	// Allocations lists who holds what, sorted by allocation order.
	Allocations []AllocationStatus `json:"allocations"`
}

// vcuHolder guards the optional VCU reference (set after construction).
type vcuHolder struct {
	mu  sync.RWMutex
	vcu *runenv.VCU
}

func (h *vcuHolder) get() *runenv.VCU {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.vcu
}

// SetVCU attaches a resource allocator so /ei_resources can report live
// allocations. A nil VCU detaches it; the endpoint then reports the bare
// device capacity from the package manager.
func (s *Server) SetVCU(v *runenv.VCU) {
	s.vcu.mu.Lock()
	defer s.vcu.mu.Unlock()
	s.vcu.vcu = v
}

func (s *Server) handleResources(w http.ResponseWriter) {
	v := s.vcu.get()
	if v == nil && s.Manager == nil {
		writeErr(w, fmt.Errorf("%w: node exposes no computing resources", ErrNotFound))
		return
	}
	var st ResourceStatus
	if v != nil {
		dev := v.Device()
		share, mem := v.Used()
		st = ResourceStatus{
			Device:         dev.Name,
			Class:          dev.Class.String(),
			FLOPS:          dev.FLOPS,
			ComputeUsedPct: share * 100,
			ComputeFreePct: (1 - share) * 100,
			MemoryTotalMB:  float64(dev.MemBytes) / (1 << 20),
			MemoryUsedMB:   float64(mem) / (1 << 20),
			MemoryFreeMB:   float64(dev.MemBytes-mem) / (1 << 20),
		}
		for _, a := range v.Allocations() {
			st.Allocations = append(st.Allocations, AllocationStatus{
				App:      a.App,
				SharePct: a.Share * 100,
				MemoryMB: float64(a.Mem) / (1 << 20),
			})
		}
	} else {
		dev := s.Manager.Device()
		st = ResourceStatus{
			Device:         dev.Name,
			Class:          dev.Class.String(),
			FLOPS:          dev.FLOPS,
			ComputeFreePct: 100,
			MemoryTotalMB:  float64(dev.MemBytes) / (1 << 20),
			MemoryFreeMB:   float64(dev.MemBytes) / (1 << 20),
		}
	}
	writeJSON(w, http.StatusOK, envelope{OK: true, Result: st})
}
