package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"openei/internal/tensor"
)

// randomArch builds a random small dense/relu architecture with a fixed
// 8-wide input and 3-class head.
func randomArch(rng *rand.Rand) *Model {
	var specs []LayerSpec
	in := 8
	depth := 1 + rng.Intn(3)
	for i := 0; i < depth; i++ {
		out := 4 + rng.Intn(12)
		specs = append(specs, LayerSpec{Type: "dense", In: in, Out: out})
		if rng.Intn(2) == 0 {
			specs = append(specs, LayerSpec{Type: "relu"})
		}
		in = out
	}
	specs = append(specs, LayerSpec{Type: "dense", In: in, Out: 3})
	m := MustModel("prop", []int{8}, specs)
	m.InitParams(rng)
	return m
}

// Property: EncodeModel/DecodeModel round-trips any random architecture
// bit-exactly — same params, and identical forward outputs.
func TestModelSerializationRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomArch(rng)
		blob, err := EncodeModel(m)
		if err != nil {
			return false
		}
		back, err := DecodeModel(blob)
		if err != nil {
			return false
		}
		if back.ParamCount() != m.ParamCount() {
			return false
		}
		x := tensor.New(2, 8)
		x.Rand(rng, 1)
		y1, err := m.Forward(x, false)
		if err != nil {
			return false
		}
		y2, err := back.Forward(x, false)
		if err != nil {
			return false
		}
		for i, v := range y1.Data() {
			if math.Float32bits(v) != math.Float32bits(y2.Data()[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone produces an independent copy — mutating the clone's
// parameters never changes the original's outputs.
func TestModelCloneIndependenceProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomArch(rng)
		x := tensor.New(1, 8)
		x.Rand(rng, 1)
		before, err := m.Forward(x, false)
		if err != nil {
			return false
		}
		want := append([]float32(nil), before.Data()...)

		clone, err := m.Clone()
		if err != nil {
			return false
		}
		for _, l := range clone.Layers {
			for _, p := range l.Params() {
				p.Fill(42)
			}
		}
		after, err := m.Forward(x, false)
		if err != nil {
			return false
		}
		for i, v := range after.Data() {
			if math.Float32bits(v) != math.Float32bits(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
