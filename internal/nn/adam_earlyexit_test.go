package nn

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"openei/internal/tensor"
)

func TestAdamDefaults(t *testing.T) {
	a := NewAdam(0)
	if a.LR != 0.001 || a.Beta1 != 0.9 || a.Beta2 != 0.999 {
		t.Errorf("defaults = %+v", a)
	}
}

func TestAdamStepValidation(t *testing.T) {
	a := NewAdam(0.01)
	p := tensor.New(2, 2)
	if err := a.Step([]*tensor.Tensor{p}, nil); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if err := a.Step([]*tensor.Tensor{p}, []*tensor.Tensor{tensor.New(3)}); !errors.Is(err, ErrShape) {
		t.Errorf("shape mismatch: err = %v", err)
	}
}

func TestAdamReducesLossOnQuadratic(t *testing.T) {
	// Minimize ‖p‖² directly: gradient is 2p.
	p := tensor.MustFrom([]float32{3, -2, 1, 4}, 4)
	g := tensor.New(4)
	a := NewAdam(0.05)
	start := p.L2Norm()
	for i := 0; i < 500; i++ {
		for j, v := range p.Data() {
			g.Data()[j] = 2 * v
		}
		if err := a.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g}); err != nil {
			t.Fatal(err)
		}
	}
	if end := p.L2Norm(); end > start/10 {
		t.Errorf("Adam did not converge: ‖p‖ %v -> %v", start, end)
	}
}

func TestTrainAdamLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		cx := float32(-1)
		if cls == 1 {
			cx = 1
		}
		x.Set(cx+float32(rng.NormFloat64())*0.4, i, 0)
		x.Set(float32(rng.NormFloat64())*0.4, i, 1)
		y[i] = cls
	}
	m := MustModel("adam-blobs", []int{2}, []LayerSpec{
		{Type: "dense", In: 2, Out: 8},
		{Type: "relu"},
		{Type: "dense", In: 8, Out: 2},
	})
	m.InitParams(rng)
	if _, _, err := TrainAdam(m, Dataset{X: x, Y: y}, TrainConfig{Epochs: 15, BatchSize: 16, LR: 0.01, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(m, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("TrainAdam accuracy = %v", acc)
	}
}

func TestTrainAdamRequiresRand(t *testing.T) {
	m := MustModel("m", []int{2}, []LayerSpec{{Type: "dense", In: 2, Out: 2}})
	if _, _, err := TrainAdam(m, Dataset{X: tensor.New(1, 2), Y: []int{0}}, TrainConfig{}); err == nil {
		t.Error("TrainAdam without Rand should fail")
	}
}

// earlyExitFixture trains a FastGRNN+head on an "early-decidable" task:
// the class is revealed by a distinctive value in the first few steps.
func earlyExitFixture(t *testing.T) (*Model, Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	const (
		T = 10
		n = 300
	)
	x := tensor.New(n, T)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := rng.Intn(2)
		y[i] = cls
		// Strong class signal at steps 0-2, noise after.
		sig := float32(-1)
		if cls == 1 {
			sig = 1
		}
		for tt := 0; tt < T; tt++ {
			if tt < 3 {
				x.Set(sig+float32(rng.NormFloat64())*0.1, i, tt)
			} else {
				x.Set(float32(rng.NormFloat64())*0.3, i, tt)
			}
		}
	}
	m := MustModel("early", []int{T}, []LayerSpec{
		{Type: "fastgrnn", RNN: &RNNSpec{T: T, D: 1, H: 8}},
		{Type: "dense", In: 8, Out: 2},
	})
	m.InitParams(rng)
	data := Dataset{X: x, Y: y}
	if _, _, err := Train(m, data, TrainConfig{Epochs: 25, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	// EMI-style head training on all-step hidden states; without it the
	// head is confidently wrong on early steps (see TrainEarlyExitHead).
	if err := TrainEarlyExitHead(m, data, 2, 10, 0.02, rng); err != nil {
		t.Fatal(err)
	}
	return m, data
}

func TestRNNEarlyExitSavesStepsAndKeepsAccuracy(t *testing.T) {
	m, data := earlyExitFixture(t)
	full, err := Accuracy(m, data.X, data.Y)
	if err != nil {
		t.Fatal(err)
	}
	if full < 0.9 {
		t.Fatalf("fixture model accuracy = %v", full)
	}
	results, err := RNNEarlyExit(m, data.X, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, r := range results {
		if r.Class == data.Y[i] {
			correct++
		}
		if r.StepsUsed < 1 || r.StepsUsed > 10 {
			t.Fatalf("StepsUsed = %d", r.StepsUsed)
		}
	}
	acc := float64(correct) / float64(len(results))
	if acc < full-0.05 {
		t.Errorf("early-exit accuracy %v too far below full %v", acc, full)
	}
	// The EMI-RNN claim: most windows resolve early, saving computation.
	frac := MeanStepsUsed(results, 10)
	if frac > 0.7 {
		t.Errorf("mean steps fraction = %v, want < 0.7 (early-decidable task)", frac)
	}
	// Threshold 1.01 is unreachable: everything uses all T steps and the
	// result matches full inference exactly.
	all, err := RNNEarlyExit(m, data.X, 1)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(data.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if all[i].Class != pred[i] {
			// Confidence can hit exactly 1.0 earlier; only flag when the
			// final-step result differs from full inference.
			if all[i].StepsUsed == 10 {
				t.Fatalf("sample %d: threshold-1 early exit disagrees with full inference", i)
			}
		}
	}
}

func TestRNNEarlyExitValidation(t *testing.T) {
	m, data := earlyExitFixture(t)
	// Thresholds above 1 (incl. +Inf) are the valid no-exit reference;
	// negative or NaN thresholds are rejected.
	if _, err := RNNEarlyExit(m, data.X, -0.1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("negative threshold: err = %v", err)
	}
	if _, err := RNNEarlyExit(m, data.X, math.NaN()); !errors.Is(err, ErrBadSpec) {
		t.Errorf("NaN threshold: err = %v", err)
	}
	if _, err := RNNEarlyExit(m, data.X, 1.5); err != nil {
		t.Errorf("threshold above 1 is the no-exit reference: err = %v", err)
	}
	if _, err := RNNEarlyExit(m, tensor.New(2, 7), 0.9); !errors.Is(err, ErrShape) {
		t.Errorf("bad input: err = %v", err)
	}
	dense := MustModel("d", []int{4}, []LayerSpec{
		{Type: "dense", In: 4, Out: 2},
		{Type: "relu"},
	})
	if _, err := RNNEarlyExit(dense, tensor.New(1, 4), 0.9); !errors.Is(err, ErrBadSpec) {
		t.Errorf("non-RNN model: err = %v", err)
	}
}

func TestMeanStepsUsed(t *testing.T) {
	rs := []EarlyExitResult{{StepsUsed: 2}, {StepsUsed: 4}}
	if got := MeanStepsUsed(rs, 10); got != 0.3 {
		t.Errorf("MeanStepsUsed = %v, want 0.3", got)
	}
	if MeanStepsUsed(nil, 10) != 0 || MeanStepsUsed(rs, 0) != 0 {
		t.Error("degenerate inputs must return 0")
	}
}

func TestTrainEarlyExitHeadValidation(t *testing.T) {
	m, data := earlyExitFixture(t)
	rng := rand.New(rand.NewSource(9))
	if err := TrainEarlyExitHead(m, data, -1, 1, 0.01, rng); !errors.Is(err, ErrBadSpec) {
		t.Errorf("negative minStep: err = %v", err)
	}
	if err := TrainEarlyExitHead(m, data, 10, 1, 0.01, rng); !errors.Is(err, ErrBadSpec) {
		t.Errorf("minStep == T: err = %v", err)
	}
	if err := TrainEarlyExitHead(m, Dataset{}, 0, 1, 0.01, rng); err == nil {
		t.Error("empty data should fail")
	}
	dense := MustModel("d", []int{4}, []LayerSpec{
		{Type: "dense", In: 4, Out: 2},
		{Type: "relu"},
	})
	if err := TrainEarlyExitHead(dense, data, 0, 1, 0.01, rng); !errors.Is(err, ErrBadSpec) {
		t.Errorf("non-RNN model: err = %v", err)
	}
}
