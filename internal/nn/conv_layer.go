package nn

import (
	"fmt"

	"openei/internal/tensor"
)

// Conv2D is a standard 2-D convolution layer over NCHW input.
type Conv2D struct {
	SpecV  tensor.Conv2DSpec
	W      *tensor.Tensor // (outC, inC*kH*kW) stored matmul-ready
	B      *tensor.Tensor // (outC)
	GW, GB *tensor.Tensor

	lastX    *tensor.Tensor
	lastCols []float32
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D returns an uninitialized convolution layer for the given spec.
func NewConv2D(s tensor.Conv2DSpec) *Conv2D {
	k := s.InC * s.KH * s.KW
	return &Conv2D{
		SpecV: s,
		W:     tensor.New(s.OutC, k), B: tensor.New(s.OutC),
		GW: tensor.New(s.OutC, k), GB: tensor.New(s.OutC),
	}
}

// Kind implements Layer.
func (c *Conv2D) Kind() string { return "conv2d" }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	s := c.SpecV
	if x.Dims() != 4 || x.Dim(1) != s.InC || x.Dim(2) != s.InH || x.Dim(3) != s.InW {
		return nil, fmt.Errorf("%w: conv2d %+v got input %v", ErrShape, s, x.Shape())
	}
	c.lastX = x
	w4 := c.W.MustReshape(s.OutC, s.InC, s.KH, s.KW)
	return tensor.Conv2D(x, w4, c.B, s)
}

// Backward implements Layer. It recomputes the im2col lowering per image
// (cheap relative to the matmuls) to produce weight and input gradients.
func (c *Conv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.lastX == nil {
		return nil, fmt.Errorf("%w (conv2d)", ErrNoForward)
	}
	s := c.SpecV
	outH, outW := s.OutH(), s.OutW()
	if grad.Dims() != 4 || grad.Dim(1) != s.OutC || grad.Dim(2) != outH || grad.Dim(3) != outW {
		return nil, fmt.Errorf("%w: conv2d backward grad %v", ErrShape, grad.Shape())
	}
	batch := c.lastX.Dim(0)
	colRows := s.InC * s.KH * s.KW
	colW := outH * outW
	if cap(c.lastCols) < colRows*colW {
		c.lastCols = make([]float32, colRows*colW)
	}
	cols := c.lastCols[:colRows*colW]
	imgLen := s.InC * s.InH * s.InW
	gradLen := s.OutC * colW
	dx := tensor.New(c.lastX.Shape()...)
	colsT := tensor.New(colW, colRows)
	gradMat := tensor.New(s.OutC, colW)
	wt, err := tensor.Transpose(c.W)
	if err != nil {
		return nil, err
	}
	dcols := tensor.New(colRows, colW)
	for b := 0; b < batch; b++ {
		tensor.Im2Col(c.lastX.Data()[b*imgLen:(b+1)*imgLen], s, cols)
		copy(gradMat.Data(), grad.Data()[b*gradLen:(b+1)*gradLen])

		// dW += grad_b · colsᵀ
		for i := 0; i < colRows; i++ {
			for j := 0; j < colW; j++ {
				colsT.Data()[j*colRows+i] = cols[i*colW+j]
			}
		}
		dw, err := tensor.MatMul(gradMat, colsT)
		if err != nil {
			return nil, err
		}
		if err := c.GW.AddScaled(dw, 1); err != nil {
			return nil, err
		}

		// dB += per-channel sums of grad.
		for oc := 0; oc < s.OutC; oc++ {
			var sum float32
			ch := gradMat.Data()[oc*colW : (oc+1)*colW]
			for _, v := range ch {
				sum += v
			}
			c.GB.Data()[oc] += sum
		}

		// dcols = Wᵀ · grad_b ; dx_b = col2im(dcols).
		if err := tensor.MatMulInto(dcols, wt, gradMat); err != nil {
			return nil, err
		}
		tensor.Col2Im(dcols.Data(), s, dx.Data()[b*imgLen:(b+1)*imgLen])
	}
	return dx, nil
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.GW, c.GB} }

// FLOPs implements Layer.
func (c *Conv2D) FLOPs(batch int) int64 {
	s := c.SpecV
	return 2 * int64(batch) * int64(s.OutC) * int64(s.OutH()) * int64(s.OutW()) *
		int64(s.InC) * int64(s.KH) * int64(s.KW)
}

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) ([]int, error) {
	s := c.SpecV
	if len(in) != 3 || in[0] != s.InC || in[1] != s.InH || in[2] != s.InW {
		return nil, fmt.Errorf("%w: conv2d %+v input shape %v", ErrShape, s, in)
	}
	return []int{s.OutC, s.OutH(), s.OutW()}, nil
}

// Spec implements Layer.
func (c *Conv2D) Spec() LayerSpec { return LayerSpec{Type: "conv2d", Conv: &c.SpecV} }

// DepthwiseConv2D is the depthwise separable convolution building block of
// MobileNets [9]: one kH×kW filter per input channel.
type DepthwiseConv2D struct {
	SpecV  tensor.Conv2DSpec // OutC == InC
	W      *tensor.Tensor    // (C, kH, kW)
	B      *tensor.Tensor    // (C)
	GW, GB *tensor.Tensor

	lastX *tensor.Tensor
}

var _ Layer = (*DepthwiseConv2D)(nil)

// NewDepthwiseConv2D returns an uninitialized depthwise convolution layer.
// The spec's OutC is forced to InC.
func NewDepthwiseConv2D(s tensor.Conv2DSpec) *DepthwiseConv2D {
	s.OutC = s.InC
	return &DepthwiseConv2D{
		SpecV: s,
		W:     tensor.New(s.InC, s.KH, s.KW), B: tensor.New(s.InC),
		GW: tensor.New(s.InC, s.KH, s.KW), GB: tensor.New(s.InC),
	}
}

// Kind implements Layer.
func (c *DepthwiseConv2D) Kind() string { return "dwconv2d" }

// Forward implements Layer.
func (c *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	c.lastX = x
	return tensor.DepthwiseConv2D(x, c.W, c.B, c.SpecV)
}

// Backward implements Layer using direct (non-lowered) loops, acceptable
// because depthwise cost is tiny compared with pointwise convs.
func (c *DepthwiseConv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.lastX == nil {
		return nil, fmt.Errorf("%w (dwconv2d)", ErrNoForward)
	}
	s := c.SpecV
	outH, outW := s.OutH(), s.OutW()
	if grad.Dims() != 4 || grad.Dim(1) != s.InC || grad.Dim(2) != outH || grad.Dim(3) != outW {
		return nil, fmt.Errorf("%w: dwconv2d backward grad %v", ErrShape, grad.Shape())
	}
	batch := c.lastX.Dim(0)
	dx := tensor.New(c.lastX.Shape()...)
	imgLen := s.InC * s.InH * s.InW
	outLen := s.InC * outH * outW
	for b := 0; b < batch; b++ {
		for ch := 0; ch < s.InC; ch++ {
			src := c.lastX.Data()[b*imgLen+ch*s.InH*s.InW : b*imgLen+(ch+1)*s.InH*s.InW]
			g := grad.Data()[b*outLen+ch*outH*outW : b*outLen+(ch+1)*outH*outW]
			ker := c.W.Data()[ch*s.KH*s.KW : (ch+1)*s.KH*s.KW]
			gker := c.GW.Data()[ch*s.KH*s.KW : (ch+1)*s.KH*s.KW]
			dsrc := dx.Data()[b*imgLen+ch*s.InH*s.InW : b*imgLen+(ch+1)*s.InH*s.InW]
			var biasSum float32
			p := 0
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					gv := g[p]
					p++
					biasSum += gv
					if gv == 0 {
						continue
					}
					for kh := 0; kh < s.KH; kh++ {
						ih := oh*s.Stride - s.Pad + kh
						if ih < 0 || ih >= s.InH {
							continue
						}
						for kw := 0; kw < s.KW; kw++ {
							iw := ow*s.Stride - s.Pad + kw
							if iw < 0 || iw >= s.InW {
								continue
							}
							gker[kh*s.KW+kw] += gv * src[ih*s.InW+iw]
							dsrc[ih*s.InW+iw] += gv * ker[kh*s.KW+kw]
						}
					}
				}
			}
			c.GB.Data()[ch] += biasSum
		}
	}
	return dx, nil
}

// Params implements Layer.
func (c *DepthwiseConv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *DepthwiseConv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.GW, c.GB} }

// FLOPs implements Layer.
func (c *DepthwiseConv2D) FLOPs(batch int) int64 {
	s := c.SpecV
	return 2 * int64(batch) * int64(s.InC) * int64(s.OutH()) * int64(s.OutW()) *
		int64(s.KH) * int64(s.KW)
}

// OutShape implements Layer.
func (c *DepthwiseConv2D) OutShape(in []int) ([]int, error) {
	s := c.SpecV
	if len(in) != 3 || in[0] != s.InC || in[1] != s.InH || in[2] != s.InW {
		return nil, fmt.Errorf("%w: dwconv2d %+v input shape %v", ErrShape, s, in)
	}
	return []int{s.InC, s.OutH(), s.OutW()}, nil
}

// Spec implements Layer.
func (c *DepthwiseConv2D) Spec() LayerSpec { return LayerSpec{Type: "dwconv2d", Conv: &c.SpecV} }

// MaxPool is a max-pooling layer.
type MaxPool struct {
	SpecV tensor.PoolSpec

	lastArg   []int
	lastShape []int
}

var _ Layer = (*MaxPool)(nil)

// NewMaxPool returns a max-pooling layer for the given spec.
func NewMaxPool(s tensor.PoolSpec) *MaxPool { return &MaxPool{SpecV: s} }

// Kind implements Layer.
func (m *MaxPool) Kind() string { return "maxpool" }

// Forward implements Layer.
func (m *MaxPool) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	out, arg, err := tensor.MaxPool2D(x, m.SpecV)
	if err != nil {
		return nil, err
	}
	m.lastArg = arg
	m.lastShape = x.Shape()
	return out, nil
}

// Backward implements Layer: gradient routes to the argmax positions.
func (m *MaxPool) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if m.lastArg == nil {
		return nil, fmt.Errorf("%w (maxpool)", ErrNoForward)
	}
	if grad.Len() != len(m.lastArg) {
		return nil, fmt.Errorf("%w: maxpool backward grad %v", ErrShape, grad.Shape())
	}
	dx := tensor.New(m.lastShape...)
	for i, src := range grad.Data() {
		dx.Data()[m.lastArg[i]] += src
	}
	return dx, nil
}

// Params implements Layer.
func (m *MaxPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (m *MaxPool) Grads() []*tensor.Tensor { return nil }

// FLOPs implements Layer.
func (m *MaxPool) FLOPs(batch int) int64 {
	s := m.SpecV
	return int64(batch) * int64(s.C) * int64(s.OutH()) * int64(s.OutW()) * int64(s.K) * int64(s.K)
}

// OutShape implements Layer.
func (m *MaxPool) OutShape(in []int) ([]int, error) {
	s := m.SpecV
	if len(in) != 3 || in[0] != s.C || in[1] != s.H || in[2] != s.W {
		return nil, fmt.Errorf("%w: maxpool %+v input shape %v", ErrShape, s, in)
	}
	return []int{s.C, s.OutH(), s.OutW()}, nil
}

// Spec implements Layer.
func (m *MaxPool) Spec() LayerSpec { return LayerSpec{Type: "maxpool", Pool: &m.SpecV} }

// GlobalAvgPool reduces (batch, C, H, W) to (batch, C).
type GlobalAvgPool struct {
	lastShape []int
}

var _ Layer = (*GlobalAvgPool)(nil)

// Kind implements Layer.
func (g *GlobalAvgPool) Kind() string { return "gap" }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	g.lastShape = x.Shape()
	return tensor.GlobalAvgPool2D(x)
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if g.lastShape == nil {
		return nil, fmt.Errorf("%w (gap)", ErrNoForward)
	}
	b, c, h, w := g.lastShape[0], g.lastShape[1], g.lastShape[2], g.lastShape[3]
	if grad.Dims() != 2 || grad.Dim(0) != b || grad.Dim(1) != c {
		return nil, fmt.Errorf("%w: gap backward grad %v", ErrShape, grad.Shape())
	}
	dx := tensor.New(g.lastShape...)
	inv := 1 / float32(h*w)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			gv := grad.At(bi, ci) * inv
			base := (bi*c + ci) * h * w
			for i := 0; i < h*w; i++ {
				dx.Data()[base+i] = gv
			}
		}
	}
	return dx, nil
}

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (g *GlobalAvgPool) Grads() []*tensor.Tensor { return nil }

// FLOPs implements Layer.
func (g *GlobalAvgPool) FLOPs(batch int) int64 { return 0 }

// OutShape implements Layer.
func (g *GlobalAvgPool) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("%w: gap input shape %v", ErrShape, in)
	}
	return []int{in[0]}, nil
}

// Spec implements Layer.
func (g *GlobalAvgPool) Spec() LayerSpec { return LayerSpec{Type: "gap"} }
