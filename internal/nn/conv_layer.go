package nn

import (
	"fmt"

	"openei/internal/parallel"
	"openei/internal/tensor"
)

// Conv2D is a standard 2-D convolution layer over NCHW input.
type Conv2D struct {
	SpecV  tensor.Conv2DSpec
	W      *tensor.Tensor // (outC, inC*kH*kW) stored matmul-ready
	B      *tensor.Tensor // (outC)
	GW, GB *tensor.Tensor

	// QW is the int8 weight artifact installed by post-training
	// quantization (compress.QuantizeInt8). The layer walk keeps running
	// the float W (which holds the dequantized round trip, so accuracy
	// matches); the compiled int8 execution plans run QW directly, and
	// WeightBytes counts it as the deployed representation.
	QW *tensor.QTensor

	lastX *tensor.Tensor

	// Backward scratch cached across steps so the training loop's hot
	// path stops allocating: dx is the returned input gradient (consumed
	// immediately by the previous layer, never retained), wt is the
	// transposed weight matrix refreshed in place each call.
	dx *tensor.Tensor
	wt *tensor.Tensor
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D returns an uninitialized convolution layer for the given spec.
func NewConv2D(s tensor.Conv2DSpec) *Conv2D {
	k := s.InC * s.KH * s.KW
	return &Conv2D{
		SpecV: s,
		W:     tensor.New(s.OutC, k), B: tensor.New(s.OutC),
		GW: tensor.New(s.OutC, k), GB: tensor.New(s.OutC),
	}
}

// Kind implements Layer.
func (c *Conv2D) Kind() string { return "conv2d" }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	s := c.SpecV
	if x.Dims() != 4 || x.Dim(1) != s.InC || x.Dim(2) != s.InH || x.Dim(3) != s.InW {
		return nil, fmt.Errorf("%w: conv2d %+v got input %v", ErrShape, s, x.Shape())
	}
	c.lastX = x
	// W is stored matmul-ready as (outC, inC*kH*kW); the kernel only
	// checks element count, so no per-call reshape header is needed.
	return tensor.Conv2D(x, c.W, c.B, s)
}

// forwardArena implements arenaForwarder: output (and, inside the kernel,
// per-shard im2col scratch) comes from reused storage, not the heap.
func (c *Conv2D) forwardArena(x *tensor.Tensor, a *tensor.Arena) (*tensor.Tensor, error) {
	s := c.SpecV
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: conv2d %+v got input %v", ErrShape, s, x.Shape())
	}
	out := a.NewUninit(x.Dim(0), s.OutC, s.OutH(), s.OutW())
	if err := tensor.Conv2DInto(out, x, c.W, c.B, s); err != nil {
		return nil, err
	}
	return out, nil
}

// Backward implements Layer. It recomputes the im2col lowering per image
// (cheap relative to the matmuls) to produce weight and input gradients;
// images shard across the parallel runtime inside tensor.Conv2DBackward.
//
// The returned gradient tensor is owned by the layer and overwritten by
// the next Backward call — the sequential training loop consumes it
// immediately, so nothing observes the reuse.
func (c *Conv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.lastX == nil {
		return nil, fmt.Errorf("%w (conv2d)", ErrNoForward)
	}
	s := c.SpecV
	outH, outW := s.OutH(), s.OutW()
	if grad.Dims() != 4 || grad.Dim(1) != s.OutC || grad.Dim(2) != outH || grad.Dim(3) != outW {
		return nil, fmt.Errorf("%w: conv2d backward grad %v", ErrShape, grad.Shape())
	}
	batch := c.lastX.Dim(0)
	if grad.Dim(0) != batch {
		return nil, fmt.Errorf("%w: conv2d backward grad batch %d vs input %d", ErrShape, grad.Dim(0), batch)
	}
	colRows := s.InC * s.KH * s.KW
	if c.dx == nil || !shapeEq(c.dx.Shape(), c.lastX.Shape()) {
		c.dx = tensor.New(c.lastX.Shape()...)
	}
	if c.wt == nil {
		c.wt = tensor.New(colRows, s.OutC)
	}
	// Weights mutate every optimizer step, so the transpose recomputes
	// each call — but into the cached buffer, not a fresh tensor.
	if err := tensor.TransposeInto(c.wt, c.W); err != nil {
		return nil, err
	}
	tensor.Conv2DBackward(c.lastX.Data(), grad.Data(), c.wt.Data(),
		c.dx.Data(), c.GW.Data(), c.GB.Data(), s, batch)
	return c.dx, nil
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.GW, c.GB} }

// FLOPs implements Layer.
func (c *Conv2D) FLOPs(batch int) int64 {
	s := c.SpecV
	return 2 * int64(batch) * int64(s.OutC) * int64(s.OutH()) * int64(s.OutW()) *
		int64(s.InC) * int64(s.KH) * int64(s.KW)
}

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) ([]int, error) {
	s := c.SpecV
	if len(in) != 3 || in[0] != s.InC || in[1] != s.InH || in[2] != s.InW {
		return nil, fmt.Errorf("%w: conv2d %+v input shape %v", ErrShape, s, in)
	}
	return []int{s.OutC, s.OutH(), s.OutW()}, nil
}

// Spec implements Layer.
func (c *Conv2D) Spec() LayerSpec { return LayerSpec{Type: "conv2d", Conv: &c.SpecV} }

// DepthwiseConv2D is the depthwise separable convolution building block of
// MobileNets [9]: one kH×kW filter per input channel.
type DepthwiseConv2D struct {
	SpecV  tensor.Conv2DSpec // OutC == InC
	W      *tensor.Tensor    // (C, kH, kW)
	B      *tensor.Tensor    // (C)
	GW, GB *tensor.Tensor

	lastX *tensor.Tensor
}

var _ Layer = (*DepthwiseConv2D)(nil)

// NewDepthwiseConv2D returns an uninitialized depthwise convolution layer.
// The spec's OutC is forced to InC.
func NewDepthwiseConv2D(s tensor.Conv2DSpec) *DepthwiseConv2D {
	s.OutC = s.InC
	return &DepthwiseConv2D{
		SpecV: s,
		W:     tensor.New(s.InC, s.KH, s.KW), B: tensor.New(s.InC),
		GW: tensor.New(s.InC, s.KH, s.KW), GB: tensor.New(s.InC),
	}
}

// Kind implements Layer.
func (c *DepthwiseConv2D) Kind() string { return "dwconv2d" }

// Forward implements Layer.
func (c *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	c.lastX = x
	return tensor.DepthwiseConv2D(x, c.W, c.B, c.SpecV)
}

// forwardArena implements arenaForwarder.
func (c *DepthwiseConv2D) forwardArena(x *tensor.Tensor, a *tensor.Arena) (*tensor.Tensor, error) {
	s := c.SpecV
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: dwconv2d %+v got input %v", ErrShape, s, x.Shape())
	}
	out := a.NewUninit(x.Dim(0), s.InC, s.OutH(), s.OutW())
	if err := tensor.DepthwiseConv2DInto(out, x, c.W, c.B, s); err != nil {
		return nil, err
	}
	return out, nil
}

// Backward implements Layer using direct (non-lowered) loops, acceptable
// because depthwise cost is tiny compared with pointwise convs. Channels
// shard across the parallel runtime: each channel's kernel gradient, bias
// gradient, and input-gradient planes are disjoint, and the per-channel
// accumulation order (images in sequence) matches the serial kernel, so
// results are bitwise pool-width-independent.
func (c *DepthwiseConv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.lastX == nil {
		return nil, fmt.Errorf("%w (dwconv2d)", ErrNoForward)
	}
	s := c.SpecV
	outH, outW := s.OutH(), s.OutW()
	if grad.Dims() != 4 || grad.Dim(1) != s.InC || grad.Dim(2) != outH || grad.Dim(3) != outW {
		return nil, fmt.Errorf("%w: dwconv2d backward grad %v", ErrShape, grad.Shape())
	}
	batch := c.lastX.Dim(0)
	dx := tensor.New(c.lastX.Shape()...)
	imgLen := s.InC * s.InH * s.InW
	outLen := s.InC * outH * outW
	channels := func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			ker := c.W.Data()[ch*s.KH*s.KW : (ch+1)*s.KH*s.KW]
			gker := c.GW.Data()[ch*s.KH*s.KW : (ch+1)*s.KH*s.KW]
			var biasSum float32
			for b := 0; b < batch; b++ {
				src := c.lastX.Data()[b*imgLen+ch*s.InH*s.InW : b*imgLen+(ch+1)*s.InH*s.InW]
				g := grad.Data()[b*outLen+ch*outH*outW : b*outLen+(ch+1)*outH*outW]
				dsrc := dx.Data()[b*imgLen+ch*s.InH*s.InW : b*imgLen+(ch+1)*s.InH*s.InW]
				p := 0
				for oh := 0; oh < outH; oh++ {
					for ow := 0; ow < outW; ow++ {
						gv := g[p]
						p++
						biasSum += gv
						if gv == 0 {
							continue
						}
						for kh := 0; kh < s.KH; kh++ {
							ih := oh*s.Stride - s.Pad + kh
							if ih < 0 || ih >= s.InH {
								continue
							}
							for kw := 0; kw < s.KW; kw++ {
								iw := ow*s.Stride - s.Pad + kw
								if iw < 0 || iw >= s.InW {
									continue
								}
								gker[kh*s.KW+kw] += gv * src[ih*s.InW+iw]
								dsrc[ih*s.InW+iw] += gv * ker[kh*s.KW+kw]
							}
						}
					}
				}
			}
			c.GB.Data()[ch] += biasSum
		}
	}
	perChannel := batch * outH * outW * s.KH * s.KW * 2
	if s.InC > 1 && parallel.Worth(s.InC*perChannel) {
		parallel.Do(s.InC, parallel.GrainItems(perChannel), channels)
	} else {
		channels(0, s.InC)
	}
	return dx, nil
}

// Params implements Layer.
func (c *DepthwiseConv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *DepthwiseConv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.GW, c.GB} }

// FLOPs implements Layer.
func (c *DepthwiseConv2D) FLOPs(batch int) int64 {
	s := c.SpecV
	return 2 * int64(batch) * int64(s.InC) * int64(s.OutH()) * int64(s.OutW()) *
		int64(s.KH) * int64(s.KW)
}

// OutShape implements Layer.
func (c *DepthwiseConv2D) OutShape(in []int) ([]int, error) {
	s := c.SpecV
	if len(in) != 3 || in[0] != s.InC || in[1] != s.InH || in[2] != s.InW {
		return nil, fmt.Errorf("%w: dwconv2d %+v input shape %v", ErrShape, s, in)
	}
	return []int{s.InC, s.OutH(), s.OutW()}, nil
}

// Spec implements Layer.
func (c *DepthwiseConv2D) Spec() LayerSpec { return LayerSpec{Type: "dwconv2d", Conv: &c.SpecV} }

// MaxPool is a max-pooling layer.
type MaxPool struct {
	SpecV tensor.PoolSpec

	lastArg   []int
	lastShape []int
}

var _ Layer = (*MaxPool)(nil)

// NewMaxPool returns a max-pooling layer for the given spec.
func NewMaxPool(s tensor.PoolSpec) *MaxPool { return &MaxPool{SpecV: s} }

// Kind implements Layer.
func (m *MaxPool) Kind() string { return "maxpool" }

// Forward implements Layer.
func (m *MaxPool) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	out, arg, err := tensor.MaxPool2D(x, m.SpecV)
	if err != nil {
		return nil, err
	}
	m.lastArg = arg
	m.lastShape = x.Shape()
	return out, nil
}

// Backward implements Layer: gradient routes to the argmax positions.
func (m *MaxPool) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if m.lastArg == nil {
		return nil, fmt.Errorf("%w (maxpool)", ErrNoForward)
	}
	if grad.Len() != len(m.lastArg) {
		return nil, fmt.Errorf("%w: maxpool backward grad %v", ErrShape, grad.Shape())
	}
	dx := tensor.New(m.lastShape...)
	for i, src := range grad.Data() {
		dx.Data()[m.lastArg[i]] += src
	}
	return dx, nil
}

// Params implements Layer.
func (m *MaxPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (m *MaxPool) Grads() []*tensor.Tensor { return nil }

// FLOPs implements Layer.
func (m *MaxPool) FLOPs(batch int) int64 {
	s := m.SpecV
	return int64(batch) * int64(s.C) * int64(s.OutH()) * int64(s.OutW()) * int64(s.K) * int64(s.K)
}

// OutShape implements Layer.
func (m *MaxPool) OutShape(in []int) ([]int, error) {
	s := m.SpecV
	if len(in) != 3 || in[0] != s.C || in[1] != s.H || in[2] != s.W {
		return nil, fmt.Errorf("%w: maxpool %+v input shape %v", ErrShape, s, in)
	}
	return []int{s.C, s.OutH(), s.OutW()}, nil
}

// Spec implements Layer.
func (m *MaxPool) Spec() LayerSpec { return LayerSpec{Type: "maxpool", Pool: &m.SpecV} }

// forwardArena implements arenaForwarder: inference skips the argmax
// bookkeeping Backward would need.
func (m *MaxPool) forwardArena(x *tensor.Tensor, a *tensor.Arena) (*tensor.Tensor, error) {
	s := m.SpecV
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: maxpool %+v got input %v", ErrShape, s, x.Shape())
	}
	out := a.NewUninit(x.Dim(0), s.C, s.OutH(), s.OutW())
	if err := tensor.MaxPool2DInto(out, x, s, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// GlobalAvgPool reduces (batch, C, H, W) to (batch, C).
type GlobalAvgPool struct {
	lastShape []int
}

var _ Layer = (*GlobalAvgPool)(nil)

// Kind implements Layer.
func (g *GlobalAvgPool) Kind() string { return "gap" }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	g.lastShape = x.Shape()
	return tensor.GlobalAvgPool2D(x)
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if g.lastShape == nil {
		return nil, fmt.Errorf("%w (gap)", ErrNoForward)
	}
	b, c, h, w := g.lastShape[0], g.lastShape[1], g.lastShape[2], g.lastShape[3]
	if grad.Dims() != 2 || grad.Dim(0) != b || grad.Dim(1) != c {
		return nil, fmt.Errorf("%w: gap backward grad %v", ErrShape, grad.Shape())
	}
	dx := tensor.New(g.lastShape...)
	inv := 1 / float32(h*w)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			gv := grad.At(bi, ci) * inv
			base := (bi*c + ci) * h * w
			for i := 0; i < h*w; i++ {
				dx.Data()[base+i] = gv
			}
		}
	}
	return dx, nil
}

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (g *GlobalAvgPool) Grads() []*tensor.Tensor { return nil }

// FLOPs implements Layer.
func (g *GlobalAvgPool) FLOPs(batch int) int64 { return 0 }

// OutShape implements Layer.
func (g *GlobalAvgPool) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("%w: gap input shape %v", ErrShape, in)
	}
	return []int{in[0]}, nil
}

// Spec implements Layer.
func (g *GlobalAvgPool) Spec() LayerSpec { return LayerSpec{Type: "gap"} }

// forwardArena implements arenaForwarder.
func (g *GlobalAvgPool) forwardArena(x *tensor.Tensor, a *tensor.Arena) (*tensor.Tensor, error) {
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: gap input shape %v", ErrShape, x.Shape())
	}
	out := a.NewUninit(x.Dim(0), x.Dim(1))
	if err := tensor.GlobalAvgPool2DInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}
