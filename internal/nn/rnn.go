package nn

import (
	"fmt"
	"math"

	"openei/internal/tensor"
)

// RNNSpec describes a FastGRNN layer: T time steps of D features reduced
// to a final hidden state of H units.
type RNNSpec struct {
	T int `json:"t"` // time steps
	D int `json:"d"` // features per step
	H int `json:"h"` // hidden units
}

// FastGRNN implements the kilobyte-scale gated RNN of Kusupati et al. [43]
// (§IV.A.2 of the paper), chosen over an LSTM because its single shared
// (W, U) pair is what makes it "fast, accurate, stable and tiny":
//
//	z_t = σ(W·x_t + U·h_{t−1} + b_z)
//	h̃_t = tanh(W·x_t + U·h_{t−1} + b_h)
//	h_t = (ζ·(1−z_t) + ν) ⊙ h̃_t + z_t ⊙ h_{t−1}
//
// with ζ = σ(zetaRaw), ν = σ(nuRaw) trainable scalars. Input is a
// time-major flattened sequence (batch, T*D); output is h_T (batch, H).
// Backward runs full backpropagation through time.
type FastGRNN struct {
	SpecV RNNSpec

	W  *tensor.Tensor // (H, D)
	U  *tensor.Tensor // (H, H)
	Bz *tensor.Tensor // (H)
	Bh *tensor.Tensor // (H)
	// ZetaRaw and NuRaw are pre-sigmoid scalars, stored as 1-element
	// tensors so they ride through Params/Grads/serialization.
	ZetaRaw *tensor.Tensor
	NuRaw   *tensor.Tensor

	GW, GU, GBz, GBh, GZetaRaw, GNuRaw *tensor.Tensor

	// BPTT caches (per forward pass in training mode).
	lastX  *tensor.Tensor
	cacheH []*tensor.Tensor // h_0..h_T (h_0 = zeros)
	cacheZ []*tensor.Tensor // z_1..z_T
	cacheC []*tensor.Tensor // h̃_1..h̃_T
}

var _ Layer = (*FastGRNN)(nil)

// NewFastGRNN returns an uninitialized FastGRNN layer.
func NewFastGRNN(s RNNSpec) (*FastGRNN, error) {
	if s.T <= 0 || s.D <= 0 || s.H <= 0 {
		return nil, fmt.Errorf("%w: fastgrnn spec %+v", ErrBadSpec, s)
	}
	r := &FastGRNN{
		SpecV: s,
		W:     tensor.New(s.H, s.D), U: tensor.New(s.H, s.H),
		Bz: tensor.New(s.H), Bh: tensor.New(s.H),
		ZetaRaw: tensor.New(1), NuRaw: tensor.New(1),
		GW: tensor.New(s.H, s.D), GU: tensor.New(s.H, s.H),
		GBz: tensor.New(s.H), GBh: tensor.New(s.H),
		GZetaRaw: tensor.New(1), GNuRaw: tensor.New(1),
	}
	// FastGRNN's recommended init: ζ≈1, ν≈~0 (σ(4)≈0.98, σ(−4)≈0.018).
	r.ZetaRaw.Set(4, 0)
	r.NuRaw.Set(-4, 0)
	return r, nil
}

// Kind implements Layer.
func (r *FastGRNN) Kind() string { return "fastgrnn" }

func sigmoid32(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

func tanh32(x float32) float32 {
	return float32(math.Tanh(float64(x)))
}

// Sigmoid32 and Tanh32 expose the exact float32 gate nonlinearities of the
// FastGRNN cell. The compiled plan's RNN op uses them so its step-by-step
// execution stays bitwise identical to this layer's Forward — the parity
// the early-exit property tests assert.
func Sigmoid32(x float32) float32 { return sigmoid32(x) }

// Tanh32 is the candidate-state nonlinearity; see Sigmoid32.
func Tanh32(x float32) float32 { return tanh32(x) }

// Forward implements Layer. Input (batch, T*D), time-major: features of
// step t occupy columns [t*D, (t+1)*D).
func (r *FastGRNN) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	s := r.SpecV
	if x.Dims() != 2 || x.Dim(1) != s.T*s.D {
		return nil, fmt.Errorf("%w: fastgrnn %+v got input %v", ErrShape, s, x.Shape())
	}
	batch := x.Dim(0)
	zeta := sigmoid32(r.ZetaRaw.At(0))
	nu := sigmoid32(r.NuRaw.At(0))

	h := tensor.New(batch, s.H)
	r.cacheH = []*tensor.Tensor{h.Clone()}
	r.cacheZ = r.cacheZ[:0]
	r.cacheC = r.cacheC[:0]
	r.lastX = x

	wt, err := tensor.Transpose(r.W)
	if err != nil {
		return nil, err
	}
	ut, err := tensor.Transpose(r.U)
	if err != nil {
		return nil, err
	}
	xt := tensor.New(batch, s.D)
	for t := 0; t < s.T; t++ {
		// Gather step t (strided copy per row).
		for b := 0; b < batch; b++ {
			copy(xt.Data()[b*s.D:(b+1)*s.D], x.Data()[b*s.T*s.D+t*s.D:b*s.T*s.D+(t+1)*s.D])
		}
		wx, err := tensor.MatMul(xt, wt) // (batch, H)
		if err != nil {
			return nil, err
		}
		uh, err := tensor.MatMul(h, ut) // (batch, H)
		if err != nil {
			return nil, err
		}
		z := tensor.New(batch, s.H)
		c := tensor.New(batch, s.H)
		hn := tensor.New(batch, s.H)
		for i := range z.Data() {
			pre := wx.Data()[i] + uh.Data()[i]
			zi := sigmoid32(pre + r.Bz.Data()[i%s.H])
			ci := tanh32(pre + r.Bh.Data()[i%s.H])
			z.Data()[i] = zi
			c.Data()[i] = ci
			hn.Data()[i] = (zeta*(1-zi)+nu)*ci + zi*h.Data()[i]
		}
		h = hn
		if train {
			r.cacheZ = append(r.cacheZ, z)
			r.cacheC = append(r.cacheC, c)
			r.cacheH = append(r.cacheH, h.Clone())
		}
	}
	if !train {
		r.cacheH = nil
		r.cacheZ = nil
		r.cacheC = nil
	}
	return h, nil
}

// Backward implements Layer with full BPTT. It requires a training-mode
// Forward (caches present).
func (r *FastGRNN) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if r.lastX == nil || len(r.cacheZ) == 0 {
		return nil, fmt.Errorf("%w (fastgrnn; Backward needs a training-mode Forward)", ErrNoForward)
	}
	s := r.SpecV
	batch := r.lastX.Dim(0)
	if grad.Dims() != 2 || grad.Dim(0) != batch || grad.Dim(1) != s.H {
		return nil, fmt.Errorf("%w: fastgrnn backward grad %v", ErrShape, grad.Shape())
	}
	zeta := sigmoid32(r.ZetaRaw.At(0))
	nu := sigmoid32(r.NuRaw.At(0))
	dZetaRaw, dNuRaw := 0.0, 0.0

	dh := grad.Clone() // dL/dh_t, walked backwards
	dx := tensor.New(batch, s.T*s.D)
	xt := tensor.New(batch, s.D)
	for t := s.T - 1; t >= 0; t-- {
		z := r.cacheZ[t]
		c := r.cacheC[t]
		hPrev := r.cacheH[t]
		for b := 0; b < batch; b++ {
			copy(xt.Data()[b*s.D:(b+1)*s.D], r.lastX.Data()[b*s.T*s.D+t*s.D:b*s.T*s.D+(t+1)*s.D])
		}
		// Per-element gate gradients.
		dPre := tensor.New(batch, s.H) // dL/d(pre-activation shared term) via both branches
		dhPrev := tensor.New(batch, s.H)
		for i := range dh.Data() {
			zi, ci, hp, g := z.Data()[i], c.Data()[i], hPrev.Data()[i], dh.Data()[i]
			gateScale := zeta*(1-zi) + nu
			// dL/dc, dL/dz, dL/dh_{t-1} (direct term).
			dc := g * gateScale
			dz := g * (-zeta*ci + hp)
			dhPrev.Data()[i] = g * zi
			// dζ, dν through the gate scale.
			dZetaRaw += float64(g*ci*(1-zi)) * float64(zeta*(1-zeta))
			dNuRaw += float64(g*ci) * float64(nu*(1-nu))
			// Through the nonlinearities to the shared pre-activation.
			dPreC := dc * (1 - ci*ci)
			dPreZ := dz * zi * (1 - zi)
			dPre.Data()[i] = dPreC + dPreZ
			// Bias gradients (separate per branch).
			r.GBh.Data()[i%s.H] += dPreC
			r.GBz.Data()[i%s.H] += dPreZ
		}
		// dW += dPreᵀ·x_t ; dU += dPreᵀ·h_{t−1} ; propagate to x and h.
		dPreT, err := tensor.Transpose(dPre)
		if err != nil {
			return nil, err
		}
		dW, err := tensor.MatMul(dPreT, xt)
		if err != nil {
			return nil, err
		}
		if err := r.GW.AddScaled(dW, 1); err != nil {
			return nil, err
		}
		dU, err := tensor.MatMul(dPreT, hPrev)
		if err != nil {
			return nil, err
		}
		if err := r.GU.AddScaled(dU, 1); err != nil {
			return nil, err
		}
		dxT, err := tensor.MatMul(dPre, r.W) // (batch, D)
		if err != nil {
			return nil, err
		}
		for b := 0; b < batch; b++ {
			copy(dx.Data()[b*s.T*s.D+t*s.D:b*s.T*s.D+(t+1)*s.D], dxT.Data()[b*s.D:(b+1)*s.D])
		}
		dhU, err := tensor.MatMul(dPre, r.U) // recurrent path into h_{t−1}
		if err != nil {
			return nil, err
		}
		if err := dhPrev.AddScaled(dhU, 1); err != nil {
			return nil, err
		}
		dh = dhPrev
	}
	r.GZetaRaw.Data()[0] += float32(dZetaRaw)
	r.GNuRaw.Data()[0] += float32(dNuRaw)
	return dx, nil
}

// Params implements Layer.
func (r *FastGRNN) Params() []*tensor.Tensor {
	return []*tensor.Tensor{r.W, r.U, r.Bz, r.Bh, r.ZetaRaw, r.NuRaw}
}

// Grads implements Layer.
func (r *FastGRNN) Grads() []*tensor.Tensor {
	return []*tensor.Tensor{r.GW, r.GU, r.GBz, r.GBh, r.GZetaRaw, r.GNuRaw}
}

// FLOPs implements Layer: per step, two matmuls against shared weights.
func (r *FastGRNN) FLOPs(batch int) int64 {
	s := r.SpecV
	perStep := 2*int64(s.H)*int64(s.D) + 2*int64(s.H)*int64(s.H)
	return int64(batch) * int64(s.T) * perStep
}

// OutShape implements Layer.
func (r *FastGRNN) OutShape(in []int) ([]int, error) {
	s := r.SpecV
	if len(in) != 1 || in[0] != s.T*s.D {
		return nil, fmt.Errorf("%w: fastgrnn %+v input shape %v", ErrShape, s, in)
	}
	return []int{s.H}, nil
}

// Spec implements Layer.
func (r *FastGRNN) Spec() LayerSpec { return LayerSpec{Type: "fastgrnn", RNN: &r.SpecV} }
