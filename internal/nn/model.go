package nn

import (
	"fmt"
	"math/rand"

	"openei/internal/tensor"
)

// LayerSpec is a serializable description of one layer's architecture.
// Exactly one group of fields is meaningful depending on Type.
type LayerSpec struct {
	Type     string             `json:"type"`
	In       int                `json:"in,omitempty"`       // dense
	Out      int                `json:"out,omitempty"`      // dense
	Conv     *tensor.Conv2DSpec `json:"conv,omitempty"`     // conv2d, dwconv2d
	Pool     *tensor.PoolSpec   `json:"pool,omitempty"`     // maxpool
	Rate     float64            `json:"rate,omitempty"`     // dropout
	Features int                `json:"features,omitempty"` // batchnorm
	RNN      *RNNSpec           `json:"rnn,omitempty"`      // fastgrnn
}

// BuildLayer constructs a layer from its spec with zeroed parameters.
func BuildLayer(s LayerSpec) (Layer, error) {
	switch s.Type {
	case "dense":
		if s.In <= 0 || s.Out <= 0 {
			return nil, fmt.Errorf("%w: dense %d→%d", ErrBadSpec, s.In, s.Out)
		}
		return NewDense(s.In, s.Out), nil
	case "conv2d":
		if s.Conv == nil {
			return nil, fmt.Errorf("%w: conv2d without conv spec", ErrBadSpec)
		}
		if err := s.Conv.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		return NewConv2D(*s.Conv), nil
	case "dwconv2d":
		if s.Conv == nil {
			return nil, fmt.Errorf("%w: dwconv2d without conv spec", ErrBadSpec)
		}
		return NewDepthwiseConv2D(*s.Conv), nil
	case "maxpool":
		if s.Pool == nil {
			return nil, fmt.Errorf("%w: maxpool without pool spec", ErrBadSpec)
		}
		return NewMaxPool(*s.Pool), nil
	case "relu":
		return &ReLU{}, nil
	case "flatten":
		return &Flatten{}, nil
	case "gap":
		return &GlobalAvgPool{}, nil
	case "dropout":
		return NewDropout(s.Rate), nil
	case "batchnorm":
		if s.Features <= 0 {
			return nil, fmt.Errorf("%w: batchnorm features %d", ErrBadSpec, s.Features)
		}
		return NewBatchNorm(s.Features), nil
	case "fastgrnn":
		if s.RNN == nil {
			return nil, fmt.Errorf("%w: fastgrnn without rnn spec", ErrBadSpec)
		}
		return NewFastGRNN(*s.RNN)
	default:
		return nil, fmt.Errorf("%w: unknown layer type %q", ErrBadSpec, s.Type)
	}
}

// Model is a sequential stack of layers with a name and a declared
// per-sample input shape. The final layer is expected to emit class logits;
// softmax is applied by the loss and by Predict.
type Model struct {
	Name       string
	InputShape []int
	Layers     []Layer
}

// NewModel builds a model from layer specs. Parameters are zero; call
// InitParams or load weights before use.
func NewModel(name string, inputShape []int, specs []LayerSpec) (*Model, error) {
	m := &Model{Name: name, InputShape: append([]int(nil), inputShape...)}
	shape := inputShape
	for i, s := range specs {
		l, err := BuildLayer(s)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
		shape, err = l.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("layer %d (%s): %w", i, s.Type, err)
		}
		m.Layers = append(m.Layers, l)
	}
	return m, nil
}

// MustModel is NewModel that panics on error, for the model zoo's
// compile-time-known architectures.
func MustModel(name string, inputShape []int, specs []LayerSpec) *Model {
	m, err := NewModel(name, inputShape, specs)
	if err != nil {
		panic(err)
	}
	return m
}

// Specs returns the serializable architecture.
func (m *Model) Specs() []LayerSpec {
	specs := make([]LayerSpec, len(m.Layers))
	for i, l := range m.Layers {
		specs[i] = l.Spec()
	}
	return specs
}

// OutputShape returns the per-sample output shape.
func (m *Model) OutputShape() ([]int, error) {
	shape := m.InputShape
	var err error
	for i, l := range m.Layers {
		shape, err = l.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
	}
	return shape, nil
}

// Classes returns the number of output classes (the flattened output size).
func (m *Model) Classes() int {
	out, err := m.OutputShape()
	if err != nil {
		return 0
	}
	return prod(out)
}

// InitParams initializes every parameter with Glorot/He-style random values
// drawn from rng.
func (m *Model) InitParams(rng *rand.Rand) {
	for _, l := range m.Layers {
		switch t := l.(type) {
		case *Dense:
			t.W.GlorotInit(rng, t.In, t.Out)
			t.B.Zero()
		case *Conv2D:
			fanIn := t.SpecV.InC * t.SpecV.KH * t.SpecV.KW
			t.W.GlorotInit(rng, fanIn, t.SpecV.OutC)
			t.B.Zero()
		case *DepthwiseConv2D:
			t.W.GlorotInit(rng, t.SpecV.KH*t.SpecV.KW, t.SpecV.KH*t.SpecV.KW)
			t.B.Zero()
		case *FastGRNN:
			t.W.GlorotInit(rng, t.SpecV.D, t.SpecV.H)
			t.U.GlorotInit(rng, t.SpecV.H, t.SpecV.H)
			t.Bz.Zero()
			t.Bh.Zero()
		case *Dropout:
			t.SetRand(rng)
		}
	}
}

// SetRand wires a random source into the layers that need one (dropout).
func (m *Model) SetRand(rng *rand.Rand) {
	for _, l := range m.Layers {
		if d, ok := l.(*Dropout); ok {
			d.SetRand(rng)
		}
	}
}

// Forward runs the full stack.
func (m *Model) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	var err error
	for i, l := range m.Layers {
		x, err = l.Forward(x, train)
		if err != nil {
			return nil, fmt.Errorf("%s layer %d (%s): %w", m.Name, i, l.Kind(), err)
		}
	}
	return x, nil
}

// arenaForwarder is the optional inference fast path a layer can expose:
// a forward pass whose output (and scratch) comes from the caller's arena
// instead of the heap. Layers without it run their ordinary Forward in
// inference mode.
type arenaForwarder interface {
	forwardArena(x *tensor.Tensor, a *tensor.Arena) (*tensor.Tensor, error)
}

// ForwardArena runs an inference-mode forward pass with every activation
// allocated from the arena. With a frozen model (FreezeInference) and a
// warmed arena the pass performs zero heap allocations — the serving
// replicas' steady state. The returned tensor is valid until the arena's
// next Reset.
func (m *Model) ForwardArena(x *tensor.Tensor, a *tensor.Arena) (*tensor.Tensor, error) {
	var err error
	for i, l := range m.Layers {
		if af, ok := l.(arenaForwarder); ok {
			x, err = af.forwardArena(x, a)
		} else {
			x, err = l.Forward(x, false)
		}
		if err != nil {
			return nil, fmt.Errorf("%s layer %d (%s): %w", m.Name, i, l.Kind(), err)
		}
	}
	return x, nil
}

// Backward propagates dL/dlogits through the stack.
func (m *Model) Backward(grad *tensor.Tensor) error {
	var err error
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad, err = m.Layers[i].Backward(grad)
		if err != nil {
			return fmt.Errorf("%s layer %d (%s): %w", m.Name, i, m.Layers[i].Kind(), err)
		}
	}
	return nil
}

// ZeroGrads clears all accumulated gradients.
func (m *Model) ZeroGrads() {
	for _, l := range m.Layers {
		for _, g := range l.Grads() {
			g.Zero()
		}
	}
}

// Params returns all trainable parameters in layer order.
func (m *Model) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads returns all gradients parallel to Params.
func (m *Model) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range m.Layers {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

// ParamCount returns the total number of trainable scalars.
func (m *Model) ParamCount() int64 {
	var n int64
	for _, p := range m.Params() {
		n += int64(p.Len())
	}
	return n
}

// NonZeroParamCount counts parameters that survive pruning.
func (m *Model) NonZeroParamCount() int64 {
	var n int64
	for _, p := range m.Params() {
		for _, v := range p.Data() {
			if v != 0 {
				n++
			}
		}
	}
	return n
}

// FLOPs returns the forward cost at the given batch size.
func (m *Model) FLOPs(batch int) int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.FLOPs(batch)
	}
	return n
}

// ActivationBytes estimates the peak activation memory (bytes, float32) for
// one sample: the two largest consecutive activation shapes.
func (m *Model) ActivationBytes() int64 {
	shape := m.InputShape
	best1, best2 := int64(prod(shape)), int64(0)
	for _, l := range m.Layers {
		out, err := l.OutShape(shape)
		if err != nil {
			break
		}
		n := int64(prod(out))
		if n > best1 {
			best1, best2 = n, best1
		} else if n > best2 {
			best2 = n
		}
		shape = out
	}
	return 4 * (best1 + best2)
}

// WeightBytes returns the storage of the model's deployed weight
// representation in bytes: 4 bytes per float32 parameter, but layers
// holding an int8 artifact (QW) count that artifact's actual footprint
// (1 byte per weight plus the per-tensor scale) instead of the float
// shadow — so a quantized tier reports ≈¼ the bytes of its float parent
// rather than the same number, and memory-cap decisions (autopilot,
// selector frontiers) see the representation that is actually deployed.
func (m *Model) WeightBytes() int64 {
	var n int64
	for _, l := range m.Layers {
		var qw *tensor.QTensor
		switch t := l.(type) {
		case *Dense:
			qw = t.QW
		case *Conv2D:
			qw = t.QW
		}
		for i, p := range l.Params() {
			if i == 0 && qw != nil && qw.Len() == p.Len() {
				n += int64(qw.SizeBytes())
				continue
			}
			n += 4 * int64(p.Len())
		}
	}
	return n
}

// Int8WeightBytes returns what WeightBytes would report if the model's
// weight matrices (dense and conv kernels — the tensors the int8 backend
// quantizes) were stored as int8 artifacts: 1 byte per weight plus a
// 4-byte scale per tensor, with biases and normalization parameters kept
// in float. The profiler uses it to cost the int8 variant of a float
// model without materializing the artifact.
func (m *Model) Int8WeightBytes() int64 {
	var n int64
	for _, l := range m.Layers {
		quantizable := false
		switch l.(type) {
		case *Dense, *Conv2D:
			quantizable = true
		}
		for i, p := range l.Params() {
			if i == 0 && quantizable {
				n += int64(p.Len()) + 4
				continue
			}
			n += 4 * int64(p.Len())
		}
	}
	return n
}

// Int4WeightBytes returns what WeightBytes would report under the int4
// plan backend: dense and conv weight matrices stored nibble-packed —
// two weights per byte, rounded up per output row — plus a 4-byte
// per-output-channel scale, with biases and normalization parameters
// kept in float. The profiler uses it to cost the int4 variant without
// materializing the packed artifact.
func (m *Model) Int4WeightBytes() int64 {
	var n int64
	for _, l := range m.Layers {
		quantizable := false
		switch l.(type) {
		case *Dense, *Conv2D:
			quantizable = true
		}
		for i, p := range l.Params() {
			if i == 0 && quantizable {
				rows := int64(p.Dim(0))
				cols := int64(p.Len()) / rows
				n += rows*((cols+1)/2) + 4*rows
				continue
			}
			n += 4 * int64(p.Len())
		}
	}
	return n
}

// InvalidateInt8Artifacts drops every installed int8 weight artifact
// (QW) and its cached dequantized expansion. Call after training mutates
// the float weights the artifacts were quantized from — consumers (plan
// compilation, WeightBytes) then re-derive int8 state from the current
// weights instead of silently serving the stale pre-training kernels.
func (m *Model) InvalidateInt8Artifacts() {
	for _, l := range m.Layers {
		switch t := l.(type) {
		case *Dense:
			t.QW = nil
			t.deqW, t.deqFor = nil, nil
		case *Conv2D:
			t.QW = nil
		}
	}
}

// Predict returns the argmax class for each row of the batched input.
func (m *Model) Predict(x *tensor.Tensor) ([]int, error) {
	logits, err := m.Forward(x, false)
	if err != nil {
		return nil, err
	}
	if logits.Dims() != 2 {
		return nil, fmt.Errorf("%w: predict expects 2-D logits, got %v", ErrShape, logits.Shape())
	}
	batch, classes := logits.Dim(0), logits.Dim(1)
	out := make([]int, batch)
	for b := 0; b < batch; b++ {
		row := logits.Data()[b*classes : (b+1)*classes]
		arg := 0
		for j, v := range row {
			if v > row[arg] {
				arg = j
			}
		}
		out[b] = arg
	}
	return out, nil
}

// Clone returns a deep copy of the model (architecture and weights). The
// clone has fresh gradient buffers and no cached activations, so it can be
// used concurrently with the original.
func (m *Model) Clone() (*Model, error) {
	c, err := NewModel(m.Name, m.InputShape, m.Specs())
	if err != nil {
		return nil, err
	}
	src, dst := m.Params(), c.Params()
	for i := range src {
		copy(dst[i].Data(), src[i].Data())
	}
	// Copy batch-norm running stats, which are not in Params.
	for i := range m.Layers {
		switch src := m.Layers[i].(type) {
		case *BatchNorm:
			dbn := c.Layers[i].(*BatchNorm)
			copy(dbn.RunMean.Data(), src.RunMean.Data())
			copy(dbn.RunVar.Data(), src.RunVar.Data())
		case *Dense:
			// Quantized weights ride along (they are never mutated in
			// place, only replaced), so a clone keeps the int8 artifact.
			c.Layers[i].(*Dense).QW = src.QW
		case *Conv2D:
			c.Layers[i].(*Conv2D).QW = src.QW
		}
	}
	return c, nil
}

// FreezeInference specializes the model for immutable inference use: every
// dense layer expands its int8 weights (if quantized) and caches the
// transposed weight matrix once, so forward passes pay neither per-call
// dequantization nor per-call transposes. Only freeze private copies whose
// weights will never change again (serving replicas); a model that may keep
// training or be re-quantized must not be frozen.
func (m *Model) FreezeInference() {
	for _, l := range m.Layers {
		d, ok := l.(*Dense)
		if !ok {
			continue
		}
		// Same lowering the inference forward uses — one shared expansion
		// point instead of freeze and forward each dequantizing on their
		// own.
		if w := d.InferenceWeights(); w != d.W {
			d.W = w
			d.QW = nil
		}
		wt, err := tensor.Transpose(d.W)
		if err != nil {
			continue // unreachable for a well-formed layer
		}
		d.wt = wt
	}
}
