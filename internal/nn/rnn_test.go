package nn

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"openei/internal/tensor"
)

func TestFastGRNNSpecValidation(t *testing.T) {
	bad := []RNNSpec{{T: 0, D: 1, H: 1}, {T: 1, D: 0, H: 1}, {T: 1, D: 1, H: 0}}
	for _, s := range bad {
		if _, err := NewFastGRNN(s); !errors.Is(err, ErrBadSpec) {
			t.Errorf("NewFastGRNN(%+v): err = %v, want ErrBadSpec", s, err)
		}
	}
	if _, err := BuildLayer(LayerSpec{Type: "fastgrnn"}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("fastgrnn without spec: err = %v", err)
	}
}

func TestFastGRNNForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := MustModel("rnn", []int{4 * 3}, []LayerSpec{
		{Type: "fastgrnn", RNN: &RNNSpec{T: 4, D: 3, H: 6}},
		{Type: "dense", In: 6, Out: 2},
	})
	m.InitParams(rng)
	x := tensor.New(5, 12)
	x.Rand(rng, 1)
	out, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 5 || out.Dim(1) != 2 {
		t.Errorf("output shape = %v", out.Shape())
	}
	// Wrong width fails.
	if _, err := m.Forward(tensor.New(2, 13), false); !errors.Is(err, ErrShape) {
		t.Errorf("wrong width: err = %v", err)
	}
}

// Full BPTT gradient check against central differences.
func TestFastGRNNGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := MustModel("rnn", []int{3 * 2}, []LayerSpec{
		{Type: "fastgrnn", RNN: &RNNSpec{T: 3, D: 2, H: 4}},
		{Type: "dense", In: 4, Out: 3},
	})
	m.InitParams(rng)
	x := tensor.New(4, 6)
	x.Rand(rng, 1)
	labels := []int{0, 1, 2, 1}

	lossAt := func() float64 {
		logits, err := m.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		l, _, err := CrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	m.ZeroGrads()
	logits, err := m.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := CrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Backward(grad); err != nil {
		t.Fatal(err)
	}
	params, grads := m.Params(), m.Grads()
	const eps = 1e-2
	for pi, p := range params {
		checks := 3
		if p.Len() < checks {
			checks = p.Len()
		}
		for c := 0; c < checks; c++ {
			i := rng.Intn(p.Len())
			orig := p.Data()[i]
			p.Data()[i] = orig + eps
			lp := lossAt()
			p.Data()[i] = orig - eps
			lm := lossAt()
			p.Data()[i] = orig
			want := (lp - lm) / (2 * eps)
			got := float64(grads[pi].Data()[i])
			if math.Abs(want-got) > 5e-2*(1+math.Abs(want)) {
				t.Errorf("param %d elem %d: analytic %v vs numeric %v", pi, i, got, want)
			}
		}
	}
}

func TestFastGRNNBackwardBeforeForward(t *testing.T) {
	r, err := NewFastGRNN(RNNSpec{T: 2, D: 2, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Backward(tensor.New(1, 2)); !errors.Is(err, ErrNoForward) {
		t.Errorf("err = %v, want ErrNoForward", err)
	}
	// Inference-mode forward drops caches, so Backward must still fail.
	x := tensor.New(1, 4)
	if _, err := r.Forward(x, false); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Backward(tensor.New(1, 2)); !errors.Is(err, ErrNoForward) {
		t.Errorf("after eval forward: err = %v, want ErrNoForward", err)
	}
}

// A sequence task an order-free model cannot solve: classify whether the
// big spike comes early or late in the window. An MLP can also learn this
// from position, so make it harder: the label depends on whether the spike
// precedes or follows a marker value. FastGRNN must beat chance clearly.
func TestFastGRNNLearnsTemporalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const (
		T = 12
		n = 400
	)
	x := tensor.New(n, T)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a := rng.Intn(T)
		b := rng.Intn(T)
		for b == a {
			b = rng.Intn(T)
		}
		// spike=+1 at a, marker=−1 at b. Label: does the spike come first?
		x.Set(1, i, a)
		x.Set(-1, i, b)
		if a < b {
			y[i] = 0
		} else {
			y[i] = 1
		}
	}
	m := MustModel("order", []int{T}, []LayerSpec{
		{Type: "fastgrnn", RNN: &RNNSpec{T: T, D: 1, H: 12}},
		{Type: "dense", In: 12, Out: 2},
	})
	m.InitParams(rng)
	data := Dataset{X: x, Y: y}
	if _, _, err := Train(m, data, TrainConfig{Epochs: 40, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(m, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("FastGRNN accuracy on temporal-order task = %v, want ≥ 0.85", acc)
	}
}

func TestFastGRNNSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := MustModel("rnn-ser", []int{8}, []LayerSpec{
		{Type: "fastgrnn", RNN: &RNNSpec{T: 4, D: 2, H: 5}},
		{Type: "dense", In: 5, Out: 3},
	})
	m.InitParams(rng)
	blob, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 8)
	x.Rand(rng, 1)
	y1, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := m2.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(y1, y2, 1e-6) {
		t.Error("serialized FastGRNN differs after round trip")
	}
}

// The kilobyte claim (§IV.A.2): a FastGRNN solving the same window task is
// dramatically smaller than the dense-unrolled equivalent.
func TestFastGRNNParameterEfficiency(t *testing.T) {
	const (
		T = 16
		D = 3
		H = 16
	)
	rnn := MustModel("rnn", []int{T * D}, []LayerSpec{
		{Type: "fastgrnn", RNN: &RNNSpec{T: T, D: D, H: H}},
		{Type: "dense", In: H, Out: 4},
	})
	// A dense baseline with a comparable hidden width per step.
	dense := MustModel("mlp", []int{T * D}, []LayerSpec{
		{Type: "dense", In: T * D, Out: T * H},
		{Type: "relu"},
		{Type: "dense", In: T * H, Out: 4},
	})
	ratio := float64(dense.ParamCount()) / float64(rnn.ParamCount())
	if ratio < 10 {
		t.Errorf("dense/rnn param ratio = %.1f, want ≥ 10 (the kilobyte-RNN premise)", ratio)
	}
	if rnn.WeightBytes() > 8<<10 {
		t.Errorf("FastGRNN weights = %d bytes, want kilobyte-scale", rnn.WeightBytes())
	}
}
