package nn

import (
	"fmt"
	"math/rand"

	"openei/internal/tensor"
)

// SGD is a stochastic-gradient-descent optimizer with classical momentum
// and optional L2 weight decay.
type SGD struct {
	LR       float32
	Momentum float32
	Decay    float32

	velocity map[*tensor.Tensor]*tensor.Tensor
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum, decay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, Decay: decay, velocity: map[*tensor.Tensor]*tensor.Tensor{}}
}

// Step applies one update to every (param, grad) pair.
func (o *SGD) Step(params, grads []*tensor.Tensor) error {
	if len(params) != len(grads) {
		return fmt.Errorf("nn: SGD got %d params and %d grads", len(params), len(grads))
	}
	for i, p := range params {
		g := grads[i]
		if !tensor.SameShape(p, g) {
			return fmt.Errorf("%w: SGD param %v vs grad %v", ErrShape, p.Shape(), g.Shape())
		}
		v, ok := o.velocity[p]
		if !ok {
			v = tensor.New(p.Shape()...)
			o.velocity[p] = v
		}
		pd, gd, vd := p.Data(), g.Data(), v.Data()
		for j := range pd {
			gj := gd[j] + o.Decay*pd[j]
			vd[j] = o.Momentum*vd[j] - o.LR*gj
			pd[j] += vd[j]
		}
	}
	return nil
}

// TrainConfig controls Train and TransferTrain.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float32
	Momentum  float32
	Decay     float32
	// Silent suppresses the per-epoch callback.
	OnEpoch func(epoch int, loss, acc float64)
	// FrozenMask marks parameter indices (into Model.Params()) that must
	// not be updated — the transfer-learning freeze of Dataflow 3.
	FrozenMask map[int]bool
	// Rand drives shuffling and dropout; required.
	Rand *rand.Rand
}

// Dataset is the minimal view of training data the trainer needs. X is a
// batched tensor whose first dimension indexes samples; Y are class labels.
type Dataset struct {
	X *tensor.Tensor
	Y []int
}

// Samples returns the number of samples.
func (d Dataset) Samples() int {
	if d.X == nil || d.X.Dims() == 0 {
		return 0
	}
	return d.X.Dim(0)
}

// Slice extracts samples [lo, hi) as a new tensor (copied) plus labels.
func (d Dataset) Slice(lo, hi int) (Dataset, error) {
	n := d.Samples()
	if lo < 0 || hi > n || lo > hi {
		return Dataset{}, fmt.Errorf("%w: dataset slice [%d,%d) of %d", ErrShape, lo, hi, n)
	}
	shape := d.X.Shape()
	per := d.X.Len() / n
	shape[0] = hi - lo
	x := tensor.New(shape...)
	copy(x.Data(), d.X.Data()[lo*per:hi*per])
	return Dataset{X: x, Y: append([]int(nil), d.Y[lo:hi]...)}, nil
}

// Gather extracts the samples at the given indices.
func (d Dataset) Gather(idx []int) (Dataset, error) {
	n := d.Samples()
	shape := d.X.Shape()
	per := d.X.Len() / max(n, 1)
	shape[0] = len(idx)
	x := tensor.New(shape...)
	y := make([]int, len(idx))
	for i, j := range idx {
		if j < 0 || j >= n {
			return Dataset{}, fmt.Errorf("%w: gather index %d of %d", ErrShape, j, n)
		}
		copy(x.Data()[i*per:(i+1)*per], d.X.Data()[j*per:(j+1)*per])
		y[i] = d.Y[j]
	}
	return Dataset{X: x, Y: y}, nil
}

// Train fits the model on train data with minibatch SGD and reports final
// (loss, accuracy) on the training set of the last epoch.
func Train(m *Model, data Dataset, cfg TrainConfig) (loss, acc float64, err error) {
	if cfg.Rand == nil {
		return 0, 0, fmt.Errorf("nn: TrainConfig.Rand is required for deterministic runs")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	m.SetRand(cfg.Rand)
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.Decay)
	n := data.Samples()
	if n == 0 {
		return 0, 0, fmt.Errorf("nn: empty training set")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	params, grads := m.Params(), m.Grads()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		cfg.Rand.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var correct, seen int
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			batch, err := data.Gather(idx[lo:hi])
			if err != nil {
				return 0, 0, err
			}
			m.ZeroGrads()
			logits, err := m.Forward(batch.X, true)
			if err != nil {
				return 0, 0, err
			}
			l, grad, err := CrossEntropy(logits, batch.Y)
			if err != nil {
				return 0, 0, err
			}
			epochLoss += l * float64(hi-lo)
			// Track training accuracy from the same logits.
			classes := logits.Dim(1)
			for b, y := range batch.Y {
				row := logits.Data()[b*classes : (b+1)*classes]
				arg := 0
				for j, v := range row {
					if v > row[arg] {
						arg = j
					}
				}
				if arg == y {
					correct++
				}
				seen++
			}
			if err := m.Backward(grad); err != nil {
				return 0, 0, err
			}
			if cfg.FrozenMask != nil {
				for pi := range params {
					if cfg.FrozenMask[pi] {
						grads[pi].Zero()
					}
				}
			}
			if err := opt.Step(params, grads); err != nil {
				return 0, 0, err
			}
		}
		loss = epochLoss / float64(n)
		acc = float64(correct) / float64(seen)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, loss, acc)
		}
	}
	// Training moved the float weights away from whatever int8 artifacts
	// were quantized from them; drop the artifacts here — at the single
	// point weights mutate — so no caller can serve stale kernels.
	m.InvalidateInt8Artifacts()
	return loss, acc, nil
}

// FreezeAllButHead returns a FrozenMask that freezes every parameter except
// those of the last k parameterized layers — the transfer-learning recipe
// of the paper's Dataflow 3 ("retrain the model on the edge").
func FreezeAllButHead(m *Model, headLayers int) map[int]bool {
	mask := map[int]bool{}
	// Count parameterized layers from the end.
	type span struct{ lo, hi int }
	var spans []span
	pi := 0
	for _, l := range m.Layers {
		np := len(l.Params())
		if np > 0 {
			spans = append(spans, span{pi, pi + np})
		}
		pi += np
	}
	cut := len(spans) - headLayers
	for i, s := range spans {
		if i < cut {
			for j := s.lo; j < s.hi; j++ {
				mask[j] = true
			}
		}
	}
	return mask
}

// DistillTrain trains student to match teacher's soft targets plus hard
// labels (Table I "knowledge transfer"). The teacher is used in inference
// mode only.
func DistillTrain(student, teacher *Model, data Dataset, temperature, alpha float64, cfg TrainConfig) (float64, error) {
	if cfg.Rand == nil {
		return 0, fmt.Errorf("nn: TrainConfig.Rand is required")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	student.SetRand(cfg.Rand)
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.Decay)
	n := data.Samples()
	if n == 0 {
		return 0, fmt.Errorf("nn: empty training set")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var last float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		cfg.Rand.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			batch, err := data.Gather(idx[lo:hi])
			if err != nil {
				return 0, err
			}
			tLogits, err := teacher.Forward(batch.X, false)
			if err != nil {
				return 0, fmt.Errorf("teacher forward: %w", err)
			}
			tProbs, err := SoftmaxT(tLogits, temperature)
			if err != nil {
				return 0, err
			}
			student.ZeroGrads()
			sLogits, err := student.Forward(batch.X, true)
			if err != nil {
				return 0, fmt.Errorf("student forward: %w", err)
			}
			l, grad, err := DistillLoss(sLogits, tProbs, batch.Y, temperature, alpha)
			if err != nil {
				return 0, err
			}
			epochLoss += l * float64(hi-lo)
			if err := student.Backward(grad); err != nil {
				return 0, err
			}
			if err := opt.Step(student.Params(), student.Grads()); err != nil {
				return 0, err
			}
		}
		last = epochLoss / float64(n)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, last, 0)
		}
	}
	return last, nil
}
