package nn

import (
	"fmt"
	"math"
	"math/rand"

	"openei/internal/tensor"
)

// This file implements EMI-RNN-style early inference [42] (§IV.A.2): for a
// model of the shape [FastGRNN → (head layers…)], the sequence is consumed
// step by step and classification stops as soon as the head is confident —
// "requires 72× less computation than standard LSTM" in the original
// because most windows resolve within a few steps.

// EarlyExitResult reports one sample's early-exit inference.
type EarlyExitResult struct {
	Class      int
	Confidence float64
	// StepsUsed is how many of the T time steps were consumed.
	StepsUsed int
}

// RNNEarlyExit runs batched early-exit inference. model's first layer must
// be a *FastGRNN; the remaining layers form the classification head (they
// must accept a (batch, H) input, e.g. Dense/ReLU stacks). x is time-major
// (batch, T*D) as for FastGRNN.Forward. Inference exits per sample at the
// first step whose head confidence reaches threshold; samples that never
// reach it use all T steps. A threshold above 1 (e.g. +Inf) is the no-exit
// reference: every sample consumes the full window — the semantics the
// compiled plan reproduces when its exit threshold is disabled.
func RNNEarlyExit(model *Model, x *tensor.Tensor, threshold float64) ([]EarlyExitResult, error) {
	if len(model.Layers) < 2 {
		return nil, fmt.Errorf("%w: early exit needs [fastgrnn, head...]", ErrBadSpec)
	}
	rnn, ok := model.Layers[0].(*FastGRNN)
	if !ok {
		return nil, fmt.Errorf("%w: first layer is %s, want fastgrnn", ErrBadSpec, model.Layers[0].Kind())
	}
	if threshold < 0 || math.IsNaN(threshold) {
		return nil, fmt.Errorf("%w: threshold %v must be non-negative", ErrBadSpec, threshold)
	}
	s := rnn.SpecV
	if x.Dims() != 2 || x.Dim(1) != s.T*s.D {
		return nil, fmt.Errorf("%w: early exit input %v vs spec %+v", ErrShape, x.Shape(), s)
	}
	batch := x.Dim(0)
	results := make([]EarlyExitResult, batch)
	done := make([]bool, batch)
	remaining := batch

	zeta := sigmoid32(rnn.ZetaRaw.At(0))
	nu := sigmoid32(rnn.NuRaw.At(0))
	wt, err := tensor.Transpose(rnn.W)
	if err != nil {
		return nil, err
	}
	ut, err := tensor.Transpose(rnn.U)
	if err != nil {
		return nil, err
	}
	h := tensor.New(batch, s.H)
	xt := tensor.New(batch, s.D)
	head := model.Layers[1:]
	for t := 0; t < s.T && remaining > 0; t++ {
		for b := 0; b < batch; b++ {
			copy(xt.Data()[b*s.D:(b+1)*s.D], x.Data()[b*s.T*s.D+t*s.D:b*s.T*s.D+(t+1)*s.D])
		}
		wx, err := tensor.MatMul(xt, wt)
		if err != nil {
			return nil, err
		}
		uh, err := tensor.MatMul(h, ut)
		if err != nil {
			return nil, err
		}
		hn := tensor.New(batch, s.H)
		for i := range hn.Data() {
			pre := wx.Data()[i] + uh.Data()[i]
			zi := sigmoid32(pre + rnn.Bz.Data()[i%s.H])
			ci := tanh32(pre + rnn.Bh.Data()[i%s.H])
			hn.Data()[i] = (zeta*(1-zi)+nu)*ci + zi*h.Data()[i]
		}
		h = hn

		// Run the head on the current hidden state.
		logits := h
		for _, l := range head {
			logits, err = l.Forward(logits, false)
			if err != nil {
				return nil, fmt.Errorf("early-exit head (%s): %w", l.Kind(), err)
			}
		}
		probs, err := Softmax(logits)
		if err != nil {
			return nil, err
		}
		classes := probs.Dim(1)
		for b := 0; b < batch; b++ {
			if done[b] {
				continue
			}
			row := probs.Data()[b*classes : (b+1)*classes]
			arg := 0
			for j, v := range row {
				if v > row[arg] {
					arg = j
				}
			}
			conf := float64(row[arg])
			last := t == s.T-1
			if conf >= threshold || last {
				results[b] = EarlyExitResult{Class: arg, Confidence: conf, StepsUsed: t + 1}
				done[b] = true
				remaining--
			}
		}
	}
	return results, nil
}

// TrainEarlyExitHead retrains the model's classification head on the
// hidden states of *every* time step (labelled with the sequence label) —
// the multiple-instance trick of EMI-RNN [42]. Without it the head, having
// only ever seen h_T, is confidently wrong on early steps and early exit
// is useless; with it, easy windows resolve in a few steps.
//
// minStep skips the first steps (hidden states before any signal can have
// accumulated); 0 uses every step. Head weights are updated in place.
func TrainEarlyExitHead(model *Model, data Dataset, minStep, epochs int, lr float32, rng *rand.Rand) error {
	if len(model.Layers) < 2 {
		return fmt.Errorf("%w: early exit needs [fastgrnn, head...]", ErrBadSpec)
	}
	rnn, ok := model.Layers[0].(*FastGRNN)
	if !ok {
		return fmt.Errorf("%w: first layer is %s, want fastgrnn", ErrBadSpec, model.Layers[0].Kind())
	}
	s := rnn.SpecV
	if minStep < 0 || minStep >= s.T {
		return fmt.Errorf("%w: minStep %d outside [0,%d)", ErrBadSpec, minStep, s.T)
	}
	n := data.Samples()
	if n == 0 {
		return fmt.Errorf("nn: empty early-exit training set")
	}
	// Collect hidden states h_{minStep+1}..h_T for every sample via a
	// training-mode forward (which caches them).
	if _, err := rnn.Forward(data.X, true); err != nil {
		return err
	}
	steps := s.T - minStep
	states := tensor.New(n*steps, s.H)
	labels := make([]int, 0, n*steps)
	row := 0
	for t := minStep + 1; t <= s.T; t++ {
		h := rnn.cacheH[t]
		copy(states.Data()[row*n*s.H:(row+1)*n*s.H], h.Data())
		labels = append(labels, data.Y...)
		row++
	}
	// Train only the head: a view-model sharing the head layer objects.
	head := &Model{Name: model.Name + "-head", InputShape: []int{s.H}, Layers: model.Layers[1:]}
	_, _, err := Train(head, Dataset{X: states, Y: labels}, TrainConfig{
		Epochs: epochs, BatchSize: 64, LR: lr, Momentum: 0.9, Rand: rng,
	})
	return err
}

// MeanStepsUsed summarizes an early-exit batch: the average fraction of
// the window consumed (the computation-saving metric of EMI-RNN).
func MeanStepsUsed(results []EarlyExitResult, totalSteps int) float64 {
	if len(results) == 0 || totalSteps == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += float64(r.StepsUsed)
	}
	return sum / float64(len(results)) / float64(totalSteps)
}
