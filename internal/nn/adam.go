package nn

import (
	"fmt"
	"math"

	"openei/internal/tensor"
)

// Adam is the adaptive-moment optimizer. The deep zoo families (vgg-m,
// mobilenet-m) train noticeably faster and at less LR-sensitive settings
// under Adam than plain SGD, which matters on an edge with a tight
// retraining budget (Dataflow 3).
type Adam struct {
	LR      float32
	Beta1   float32
	Beta2   float32
	Epsilon float32

	step int
	m    map[*tensor.Tensor]*tensor.Tensor
	v    map[*tensor.Tensor]*tensor.Tensor
}

// NewAdam returns an Adam optimizer with the canonical defaults for any
// zero field (lr 0.001, β₁ 0.9, β₂ 0.999, ε 1e−8).
func NewAdam(lr float32) *Adam {
	if lr == 0 {
		lr = 0.001
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: map[*tensor.Tensor]*tensor.Tensor{},
		v: map[*tensor.Tensor]*tensor.Tensor{},
	}
}

// Step applies one Adam update with bias correction.
func (o *Adam) Step(params, grads []*tensor.Tensor) error {
	if len(params) != len(grads) {
		return fmt.Errorf("nn: Adam got %d params and %d grads", len(params), len(grads))
	}
	o.step++
	bc1 := 1 - float32(math.Pow(float64(o.Beta1), float64(o.step)))
	bc2 := 1 - float32(math.Pow(float64(o.Beta2), float64(o.step)))
	for i, p := range params {
		g := grads[i]
		if !tensor.SameShape(p, g) {
			return fmt.Errorf("%w: Adam param %v vs grad %v", ErrShape, p.Shape(), g.Shape())
		}
		mm, ok := o.m[p]
		if !ok {
			mm = tensor.New(p.Shape()...)
			o.m[p] = mm
			o.v[p] = tensor.New(p.Shape()...)
		}
		vv := o.v[p]
		pd, gd, md, vd := p.Data(), g.Data(), mm.Data(), vv.Data()
		for j := range pd {
			md[j] = o.Beta1*md[j] + (1-o.Beta1)*gd[j]
			vd[j] = o.Beta2*vd[j] + (1-o.Beta2)*gd[j]*gd[j]
			mHat := md[j] / bc1
			vHat := vd[j] / bc2
			pd[j] -= o.LR * mHat / (sqrt32(vHat) + o.Epsilon)
		}
	}
	return nil
}

// TrainAdam is Train with the Adam optimizer instead of SGD; the
// TrainConfig's Momentum/Decay fields are ignored.
func TrainAdam(m *Model, data Dataset, cfg TrainConfig) (loss, acc float64, err error) {
	if cfg.Rand == nil {
		return 0, 0, fmt.Errorf("nn: TrainConfig.Rand is required")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR == 0 {
		cfg.LR = 0.001
	}
	m.SetRand(cfg.Rand)
	opt := NewAdam(cfg.LR)
	n := data.Samples()
	if n == 0 {
		return 0, 0, fmt.Errorf("nn: empty training set")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	params, grads := m.Params(), m.Grads()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		cfg.Rand.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var correct, seen int
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			batch, err := data.Gather(idx[lo:hi])
			if err != nil {
				return 0, 0, err
			}
			m.ZeroGrads()
			logits, err := m.Forward(batch.X, true)
			if err != nil {
				return 0, 0, err
			}
			l, grad, err := CrossEntropy(logits, batch.Y)
			if err != nil {
				return 0, 0, err
			}
			epochLoss += l * float64(hi-lo)
			classes := logits.Dim(1)
			for b, y := range batch.Y {
				row := logits.Data()[b*classes : (b+1)*classes]
				arg := 0
				for j, v := range row {
					if v > row[arg] {
						arg = j
					}
				}
				if arg == y {
					correct++
				}
				seen++
			}
			if err := m.Backward(grad); err != nil {
				return 0, 0, err
			}
			if cfg.FrozenMask != nil {
				for pi := range params {
					if cfg.FrozenMask[pi] {
						grads[pi].Zero()
					}
				}
			}
			if err := opt.Step(params, grads); err != nil {
				return 0, 0, err
			}
		}
		loss = epochLoss / float64(n)
		acc = float64(correct) / float64(seen)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, loss, acc)
		}
	}
	return loss, acc, nil
}
