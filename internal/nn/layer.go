// Package nn implements the neural-network substrate OpenEI runs on: a
// layer/model abstraction with forward and backward passes, SGD training,
// loss functions, cost accounting (FLOPs, parameter and activation memory
// used by the hardware simulator), and a portable binary model format used
// for cloud→edge model distribution.
//
// The paper's "packages" (TensorFlow Lite, CoreML, QNNPACK, …) all reduce
// to executing a layer graph; this package is the from-scratch substitute
// for those engines.
package nn

import (
	"errors"
	"fmt"
	"math"

	"openei/internal/parallel"
	"openei/internal/tensor"
)

// Errors shared across the package.
var (
	// ErrShape indicates an input incompatible with a layer or model.
	ErrShape = errors.New("nn: shape mismatch")
	// ErrNoForward is returned by Backward when no forward pass has been run.
	ErrNoForward = errors.New("nn: Backward called before Forward")
	// ErrBadSpec indicates an invalid or unknown layer specification.
	ErrBadSpec = errors.New("nn: invalid layer spec")
)

// Layer is a differentiable computation node. Implementations cache
// whatever they need during Forward to compute Backward; a Layer is
// therefore not safe for concurrent use (sessions in pkgmgr serialize
// access or clone models).
type Layer interface {
	// Kind returns the spec type tag, e.g. "dense" or "conv2d".
	Kind() string
	// Forward computes the layer output. train enables training-only
	// behaviour such as dropout.
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error)
	// Backward consumes dL/dout and returns dL/din, accumulating parameter
	// gradients internally.
	Backward(grad *tensor.Tensor) (*tensor.Tensor, error)
	// Params returns the trainable parameter tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors parallel to Params.
	Grads() []*tensor.Tensor
	// FLOPs returns the multiply-add dominated cost of one forward pass at
	// the given batch size.
	FLOPs(batch int) int64
	// OutShape maps a per-sample input shape (without batch dim) to the
	// per-sample output shape.
	OutShape(in []int) ([]int, error)
	// Spec returns a serializable description of the layer architecture
	// (weights are stored separately).
	Spec() LayerSpec
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func prod(xs []int) int {
	p := 1
	for _, x := range xs {
		p *= x
	}
	return p
}

// Dense is a fully connected layer: y = x·Wᵀ + b with W of shape (out, in).
type Dense struct {
	In, Out int
	W, B    *tensor.Tensor
	GW, GB  *tensor.Tensor

	// Quantized weights, set by pkgmgr when running on a quantized-kernel
	// package profile; nil means the float path is used.
	QW *tensor.QTensor

	// wt is the pre-transposed (and pre-dequantized) weight matrix cached
	// by Model.FreezeInference on immutable inference clones; nil on
	// mutable models.
	wt *tensor.Tensor

	// deqW caches the dequantized expansion of QW (keyed by deqFor, since
	// quantized artifacts are replaced, never mutated in place) so neither
	// per-call inference nor FreezeInference pays repeated expansion.
	deqW   *tensor.Tensor
	deqFor *tensor.QTensor

	lastX *tensor.Tensor
}

var _ Layer = (*Dense)(nil)

// denseTransposeBatch is the batch size from which Forward transposes the
// weights once per call instead of running transpose-free dot products:
// below it the transpose dominates, above it the streaming kernel wins.
const denseTransposeBatch = 8

// NewDense returns an uninitialized Dense layer; call InitParams (or load
// weights) before use.
func NewDense(in, out int) *Dense {
	return &Dense{
		In: in, Out: out,
		W: tensor.New(out, in), B: tensor.New(out),
		GW: tensor.New(out, in), GB: tensor.New(out),
	}
}

// Kind implements Layer.
func (d *Dense) Kind() string { return "dense" }

// Forward implements Layer. Input is (batch, in).
func (d *Dense) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Dims() != 2 || x.Dim(1) != d.In {
		return nil, fmt.Errorf("%w: dense(%d→%d) got input %v", ErrShape, d.In, d.Out, x.Shape())
	}
	d.lastX = x
	if d.wt != nil && !train {
		// Frozen inference clone: weights were dequantized and transposed
		// once by FreezeInference, so every batch takes the streaming ikj
		// kernel with zero per-call setup.
		y, err := tensor.MatMul(x, d.wt)
		if err != nil {
			return nil, err
		}
		if err := tensor.AddBiasRows(y, d.B); err != nil {
			return nil, err
		}
		return y, nil
	}
	w := d.W
	if !train {
		// Inference runs against the lowered weights: identical to W for
		// float layers, the cached expansion of the int8 artifact for
		// quantized ones. (True int8 *compute* lives in the compiled
		// execution plans; this layer walk is the training/reference path.)
		w = d.InferenceWeights()
	}
	// W is stored (out, in). Small batches run transpose-free row dot
	// products (x·Wᵀ); larger batches amortize one transpose of W and use
	// the faster streaming ikj kernel — the split that makes micro-batched
	// serving cheaper per sample than per-request calls.
	var y *tensor.Tensor
	if x.Dim(0) >= denseTransposeBatch {
		wt, err := tensor.Transpose(w)
		if err != nil {
			return nil, err
		}
		y, err = tensor.MatMul(x, wt)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		y, err = tensor.MatMulBT(x, w)
		if err != nil {
			return nil, err
		}
	}
	if err := tensor.AddBiasRows(y, d.B); err != nil {
		return nil, err
	}
	return y, nil
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.lastX == nil {
		return nil, fmt.Errorf("%w (dense %d→%d)", ErrNoForward, d.In, d.Out)
	}
	if grad.Dims() != 2 || grad.Dim(1) != d.Out {
		return nil, fmt.Errorf("%w: dense backward grad %v", ErrShape, grad.Shape())
	}
	// dW += gradᵀ·x ; db += column sums of grad ; dx = grad·W.
	gt, err := tensor.Transpose(grad)
	if err != nil {
		return nil, err
	}
	dw, err := tensor.MatMul(gt, d.lastX)
	if err != nil {
		return nil, err
	}
	if err := d.GW.AddScaled(dw, 1); err != nil {
		return nil, err
	}
	db, err := tensor.SumRows(grad)
	if err != nil {
		return nil, err
	}
	if err := d.GB.AddScaled(db, 1); err != nil {
		return nil, err
	}
	return tensor.MatMul(grad, d.W)
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.GW, d.GB} }

// FLOPs implements Layer.
func (d *Dense) FLOPs(batch int) int64 { return 2 * int64(batch) * int64(d.In) * int64(d.Out) }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) ([]int, error) {
	if len(in) != 1 || in[0] != d.In {
		return nil, fmt.Errorf("%w: dense(%d→%d) input shape %v", ErrShape, d.In, d.Out, in)
	}
	return []int{d.Out}, nil
}

// Spec implements Layer.
func (d *Dense) Spec() LayerSpec { return LayerSpec{Type: "dense", In: d.In, Out: d.Out} }

// InferenceWeights is the single lowering point for dense inference
// weights: W itself for float layers, or the dequantized expansion of the
// installed int8 artifact — computed once per QW and cached, so both the
// per-call inference path and Model.FreezeInference share one expansion
// instead of each dequantizing on their own. The returned tensor must be
// treated as read-only.
func (d *Dense) InferenceWeights() *tensor.Tensor {
	if d.QW == nil {
		return d.W
	}
	if d.deqW == nil || d.deqFor != d.QW {
		d.deqW = d.QW.Dequantize()
		d.deqFor = d.QW
	}
	return d.deqW
}

// forwardArena implements arenaForwarder: on a frozen inference clone the
// output comes from the arena and the pass allocates nothing. Mutable
// models (no cached wt) fall back to the general path.
func (d *Dense) forwardArena(x *tensor.Tensor, a *tensor.Arena) (*tensor.Tensor, error) {
	if d.wt == nil {
		return d.Forward(x, false)
	}
	if x.Dims() != 2 || x.Dim(1) != d.In {
		return nil, fmt.Errorf("%w: dense(%d→%d) got input %v", ErrShape, d.In, d.Out, x.Shape())
	}
	y := a.NewUninit(x.Dim(0), d.Out)
	if err := tensor.MatMulInto(y, x, d.wt); err != nil {
		return nil, err
	}
	if err := tensor.AddBiasRows(y, d.B); err != nil {
		return nil, err
	}
	return y, nil
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// Kind implements Layer.
func (r *ReLU) Kind() string { return "relu" }

// Forward implements Layer. The elementwise loop shards across the
// parallel runtime for large activations (conv feature maps).
func (r *ReLU) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	out := x.Clone()
	if cap(r.mask) < out.Len() {
		r.mask = make([]bool, out.Len())
	}
	r.mask = r.mask[:out.Len()]
	d := out.Data()
	elems := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if d[i] > 0 {
				r.mask[i] = true
			} else {
				r.mask[i] = false
				d[i] = 0
			}
		}
	}
	runElems(len(d), elems)
	return out, nil
}

// forwardArena implements arenaForwarder: inference needs no backprop
// mask, so the pass is a single clamped copy into arena storage. The
// parallel closure is built only on the sharded branch — hoisting it
// through runElems would heap-allocate it even for tiny activations and
// break the serving path's zero-allocation guarantee.
func (r *ReLU) forwardArena(x *tensor.Tensor, a *tensor.Arena) (*tensor.Tensor, error) {
	out := a.NewUninitLike(x)
	src, dst := x.Data(), out.Data()
	if parallel.Worth(len(src)) {
		parallel.Do(len(src), parallel.GrainWork(), func(lo, hi int) {
			reluElems(dst, src, lo, hi)
		})
	} else {
		reluElems(dst, src, 0, len(src))
	}
	return out, nil
}

func reluElems(dst, src []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		if v := src[i]; v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if r.mask == nil {
		return nil, fmt.Errorf("%w (relu)", ErrNoForward)
	}
	if grad.Len() != len(r.mask) {
		return nil, fmt.Errorf("%w: relu backward grad %v vs mask %d", ErrShape, grad.Shape(), len(r.mask))
	}
	out := grad.Clone()
	d := out.Data()
	runElems(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !r.mask[i] {
				d[i] = 0
			}
		}
	})
	return out, nil
}

// runElems executes an elementwise loop, sharding it across the parallel
// runtime when the tensor is large enough to repay dispatch.
func runElems(n int, fn func(lo, hi int)) {
	if parallel.Worth(n) {
		parallel.Do(n, parallel.GrainWork(), fn)
		return
	}
	fn(0, n)
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// FLOPs implements Layer: one comparison per element, negligible but
// accounted for completeness using the mask length of the last run; since
// FLOPs must be shape-static we return 0 and let the model account
// activations via OutShape.
func (r *ReLU) FLOPs(batch int) int64 { return 0 }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// Spec implements Layer.
func (r *ReLU) Spec() LayerSpec { return LayerSpec{Type: "relu"} }

// Flatten reshapes (batch, d1, d2, …) to (batch, d1*d2*…).
type Flatten struct {
	lastShape []int
}

var _ Layer = (*Flatten)(nil)

// Kind implements Layer.
func (f *Flatten) Kind() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Dims() < 2 {
		return nil, fmt.Errorf("%w: flatten needs batched input, got %v", ErrShape, x.Shape())
	}
	f.lastShape = x.Shape()
	return x.Reshape(x.Dim(0), x.Len()/x.Dim(0))
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if f.lastShape == nil {
		return nil, fmt.Errorf("%w (flatten)", ErrNoForward)
	}
	return grad.Reshape(f.lastShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// FLOPs implements Layer.
func (f *Flatten) FLOPs(batch int) int64 { return 0 }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) ([]int, error) { return []int{prod(in)}, nil }

// Spec implements Layer.
func (f *Flatten) Spec() LayerSpec { return LayerSpec{Type: "flatten"} }

// forwardArena implements arenaForwarder: the reshape header comes from
// the arena instead of the heap.
func (f *Flatten) forwardArena(x *tensor.Tensor, a *tensor.Arena) (*tensor.Tensor, error) {
	if x.Dims() < 2 {
		return nil, fmt.Errorf("%w: flatten needs batched input, got %v", ErrShape, x.Shape())
	}
	return a.View(x, x.Dim(0), x.Len()/x.Dim(0))
}

// Dropout zeroes a fraction Rate of activations during training and scales
// the survivors (inverted dropout); it is the identity at inference time.
type Dropout struct {
	Rate float64
	// rng is injected by the model so runs are deterministic.
	rng  randSource
	mask []float32
}

// randSource is the subset of *rand.Rand Dropout needs; declared as an
// interface so the model can inject a shared deterministic source.
type randSource interface {
	Float64() float64
}

var _ Layer = (*Dropout)(nil)

// NewDropout returns a Dropout layer with the given drop probability.
func NewDropout(rate float64) *Dropout { return &Dropout{Rate: rate} }

// Kind implements Layer.
func (d *Dropout) Kind() string { return "dropout" }

// SetRand injects the random source used to draw dropout masks.
func (d *Dropout) SetRand(r randSource) { d.rng = r }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if !train || d.Rate <= 0 {
		d.mask = nil
		return x, nil
	}
	if d.rng == nil {
		return nil, fmt.Errorf("nn: dropout used in training without a random source")
	}
	keep := 1 - d.Rate
	scale := float32(1 / keep)
	out := x.Clone()
	if cap(d.mask) < out.Len() {
		d.mask = make([]float32, out.Len())
	}
	d.mask = d.mask[:out.Len()]
	data := out.Data()
	for i := range data {
		if d.rng.Float64() < d.Rate {
			d.mask[i] = 0
			data[i] = 0
		} else {
			d.mask[i] = scale
			data[i] *= scale
		}
	}
	return out, nil
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.mask == nil {
		return grad, nil // inference-mode or rate-0 forward: identity
	}
	if grad.Len() != len(d.mask) {
		return nil, fmt.Errorf("%w: dropout backward grad %v", ErrShape, grad.Shape())
	}
	out := grad.Clone()
	data := out.Data()
	for i := range data {
		data[i] *= d.mask[i]
	}
	return out, nil
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

// FLOPs implements Layer.
func (d *Dropout) FLOPs(batch int) int64 { return 0 }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// Spec implements Layer.
func (d *Dropout) Spec() LayerSpec { return LayerSpec{Type: "dropout", Rate: d.Rate} }

// forwardArena implements arenaForwarder: dropout is the identity at
// inference time.
func (d *Dropout) forwardArena(x *tensor.Tensor, _ *tensor.Arena) (*tensor.Tensor, error) {
	return x, nil
}

// BatchNorm applies per-feature normalization with learned scale and shift.
// For 2-D input it normalizes each column; for 4-D NCHW input it normalizes
// each channel. It keeps running statistics for inference, as the batch
// normalization the paper's model families rely on.
type BatchNorm struct {
	Features int
	Gamma    *tensor.Tensor
	Beta     *tensor.Tensor
	GGamma   *tensor.Tensor
	GBeta    *tensor.Tensor
	RunMean  *tensor.Tensor
	RunVar   *tensor.Tensor
	Momentum float32
	Eps      float32

	lastNorm *tensor.Tensor
	lastStd  []float32
	lastDims [2]int // groups per feature: (rows, spatial)
	lastIn   []int
}

var _ Layer = (*BatchNorm)(nil)

// NewBatchNorm returns a BatchNorm over the given feature (channel) count.
func NewBatchNorm(features int) *BatchNorm {
	bn := &BatchNorm{
		Features: features,
		Gamma:    tensor.New(features),
		Beta:     tensor.New(features),
		GGamma:   tensor.New(features),
		GBeta:    tensor.New(features),
		RunMean:  tensor.New(features),
		RunVar:   tensor.New(features),
		Momentum: 0.9,
		Eps:      1e-5,
	}
	bn.Gamma.Fill(1)
	bn.RunVar.Fill(1)
	return bn
}

// Kind implements Layer.
func (b *BatchNorm) Kind() string { return "batchnorm" }

// layout returns (batch, spatial) grouping for the input.
func (b *BatchNorm) layout(x *tensor.Tensor) (batch, spatial int, err error) {
	switch x.Dims() {
	case 2:
		if x.Dim(1) != b.Features {
			return 0, 0, fmt.Errorf("%w: batchnorm(%d) input %v", ErrShape, b.Features, x.Shape())
		}
		return x.Dim(0), 1, nil
	case 4:
		if x.Dim(1) != b.Features {
			return 0, 0, fmt.Errorf("%w: batchnorm(%d) input %v", ErrShape, b.Features, x.Shape())
		}
		return x.Dim(0), x.Dim(2) * x.Dim(3), nil
	default:
		return 0, 0, fmt.Errorf("%w: batchnorm needs 2-D or 4-D input, got %v", ErrShape, x.Shape())
	}
}

// index maps (sample, feature, spatial position) to a flat offset.
func (b *BatchNorm) index(n, f, s, spatial int) int {
	return (n*b.Features+f)*spatial + s
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	batch, spatial, err := b.layout(x)
	if err != nil {
		return nil, err
	}
	out := x.Clone()
	data := out.Data()
	count := batch * spatial
	if count == 0 {
		return out, nil
	}
	b.lastDims = [2]int{batch, spatial}
	b.lastIn = x.Shape()
	if b.lastStd == nil || len(b.lastStd) != b.Features {
		b.lastStd = make([]float32, b.Features)
	}
	norm := tensor.New(x.Shape()...)
	for f := 0; f < b.Features; f++ {
		var mean, variance float32
		if train {
			var sum float64
			for n := 0; n < batch; n++ {
				for s := 0; s < spatial; s++ {
					sum += float64(data[b.index(n, f, s, spatial)])
				}
			}
			mean = float32(sum / float64(count))
			var vs float64
			for n := 0; n < batch; n++ {
				for s := 0; s < spatial; s++ {
					d := data[b.index(n, f, s, spatial)] - mean
					vs += float64(d) * float64(d)
				}
			}
			variance = float32(vs / float64(count))
			b.RunMean.Data()[f] = b.Momentum*b.RunMean.Data()[f] + (1-b.Momentum)*mean
			b.RunVar.Data()[f] = b.Momentum*b.RunVar.Data()[f] + (1-b.Momentum)*variance
		} else {
			mean = b.RunMean.Data()[f]
			variance = b.RunVar.Data()[f]
		}
		std := sqrt32(variance + b.Eps)
		b.lastStd[f] = std
		g, be := b.Gamma.Data()[f], b.Beta.Data()[f]
		for n := 0; n < batch; n++ {
			for s := 0; s < spatial; s++ {
				i := b.index(n, f, s, spatial)
				nv := (data[i] - mean) / std
				norm.Data()[i] = nv
				data[i] = g*nv + be
			}
		}
	}
	if train {
		b.lastNorm = norm
	} else {
		b.lastNorm = nil
	}
	return out, nil
}

// Backward implements Layer. It uses the standard batch-norm gradient.
func (b *BatchNorm) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if b.lastNorm == nil {
		return nil, fmt.Errorf("%w (batchnorm)", ErrNoForward)
	}
	if !shapeEq(grad.Shape(), b.lastIn) {
		return nil, fmt.Errorf("%w: batchnorm backward grad %v vs input %v", ErrShape, grad.Shape(), b.lastIn)
	}
	batch, spatial := b.lastDims[0], b.lastDims[1]
	count := float32(batch * spatial)
	out := tensor.New(b.lastIn...)
	g := grad.Data()
	norm := b.lastNorm.Data()
	for f := 0; f < b.Features; f++ {
		var sumG, sumGN float64
		for n := 0; n < batch; n++ {
			for s := 0; s < spatial; s++ {
				i := b.index(n, f, s, spatial)
				sumG += float64(g[i])
				sumGN += float64(g[i]) * float64(norm[i])
			}
		}
		b.GBeta.Data()[f] += float32(sumG)
		b.GGamma.Data()[f] += float32(sumGN)
		gamma := b.Gamma.Data()[f]
		std := b.lastStd[f]
		for n := 0; n < batch; n++ {
			for s := 0; s < spatial; s++ {
				i := b.index(n, f, s, spatial)
				out.Data()[i] = gamma / std / count *
					(count*g[i] - float32(sumG) - norm[i]*float32(sumGN))
			}
		}
	}
	return out, nil
}

// Params implements Layer.
func (b *BatchNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{b.Gamma, b.Beta} }

// Grads implements Layer.
func (b *BatchNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{b.GGamma, b.GBeta} }

// FLOPs implements Layer.
func (b *BatchNorm) FLOPs(batch int) int64 { return 0 }

// OutShape implements Layer.
func (b *BatchNorm) OutShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// Spec implements Layer.
func (b *BatchNorm) Spec() LayerSpec { return LayerSpec{Type: "batchnorm", Features: b.Features} }

// forwardArena implements arenaForwarder: inference normalizes against the
// running statistics directly into arena storage, skipping the
// normalized-value cache the training path keeps for Backward.
func (b *BatchNorm) forwardArena(x *tensor.Tensor, a *tensor.Arena) (*tensor.Tensor, error) {
	batch, spatial, err := b.layout(x)
	if err != nil {
		return nil, err
	}
	out := a.NewUninitLike(x)
	src, dst := x.Data(), out.Data()
	for f := 0; f < b.Features; f++ {
		mean := b.RunMean.Data()[f]
		std := sqrt32(b.RunVar.Data()[f] + b.Eps)
		g, be := b.Gamma.Data()[f], b.Beta.Data()[f]
		for n := 0; n < batch; n++ {
			base := (n*b.Features + f) * spatial
			for s := 0; s < spatial; s++ {
				// Same expression shape as the general path so frozen and
				// mutable forwards stay bitwise identical.
				dst[base+s] = g*((src[base+s]-mean)/std) + be
			}
		}
	}
	return out, nil
}

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }
