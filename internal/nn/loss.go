package nn

import (
	"fmt"
	"math"

	"openei/internal/tensor"
)

// Softmax computes row-wise softmax of 2-D logits, numerically stabilized.
func Softmax(logits *tensor.Tensor) (*tensor.Tensor, error) {
	if logits.Dims() != 2 {
		return nil, fmt.Errorf("%w: softmax needs 2-D logits, got %v", ErrShape, logits.Shape())
	}
	out := tensor.New(logits.Dim(0), logits.Dim(1))
	if err := SoftmaxInto(out, logits); err != nil {
		return nil, err
	}
	return out, nil
}

// SoftmaxInto computes row-wise softmax of 2-D logits into dst, reusing
// dst's storage (it need not be zeroed).
func SoftmaxInto(dst, logits *tensor.Tensor) error {
	if logits.Dims() != 2 {
		return fmt.Errorf("%w: softmax needs 2-D logits, got %v", ErrShape, logits.Shape())
	}
	batch, classes := logits.Dim(0), logits.Dim(1)
	if dst.Dims() != 2 || dst.Dim(0) != batch || dst.Dim(1) != classes {
		return fmt.Errorf("%w: softmax output %v for logits %v", ErrShape, dst.Shape(), logits.Shape())
	}
	out := dst
	for b := 0; b < batch; b++ {
		row := logits.Data()[b*classes : (b+1)*classes]
		dst := out.Data()[b*classes : (b+1)*classes]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
	return nil
}

// SoftmaxT computes softmax with temperature T (used by knowledge
// distillation's soft targets; T=1 is plain softmax).
func SoftmaxT(logits *tensor.Tensor, temperature float64) (*tensor.Tensor, error) {
	if temperature <= 0 {
		return nil, fmt.Errorf("nn: softmax temperature must be positive, got %v", temperature)
	}
	scaled := logits.Clone()
	scaled.Scale(float32(1 / temperature))
	return Softmax(scaled)
}

// CrossEntropy computes mean cross-entropy loss of logits against integer
// labels and returns the loss plus dL/dlogits (softmax − onehot, averaged
// over the batch), ready for Model.Backward.
func CrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor, error) {
	if logits.Dims() != 2 {
		return 0, nil, fmt.Errorf("%w: cross-entropy needs 2-D logits, got %v", ErrShape, logits.Shape())
	}
	batch, classes := logits.Dim(0), logits.Dim(1)
	if len(labels) != batch {
		return 0, nil, fmt.Errorf("%w: %d labels for batch %d", ErrShape, len(labels), batch)
	}
	probs, err := Softmax(logits)
	if err != nil {
		return 0, nil, err
	}
	grad := probs.Clone()
	var loss float64
	inv := float32(1 / float64(batch))
	for b, y := range labels {
		if y < 0 || y >= classes {
			return 0, nil, fmt.Errorf("%w: label %d out of range [0,%d)", ErrShape, y, classes)
		}
		p := probs.At(b, y)
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(float64(p))
		grad.Set(grad.At(b, y)-1, b, y)
	}
	grad.Scale(inv)
	return loss / float64(batch), grad, nil
}

// DistillLoss computes the knowledge-distillation objective of
// Table I's "knowledge transfer" row: a weighted sum of hard-label
// cross-entropy and KL divergence to the teacher's temperature-softened
// distribution. It returns loss and dL/dlogits for the student.
//
//	L = alpha * CE(student, labels) + (1-alpha) * T² * KL(teacher_T ‖ student_T)
func DistillLoss(studentLogits, teacherProbsT *tensor.Tensor, labels []int, temperature, alpha float64) (float64, *tensor.Tensor, error) {
	if !tensor.SameShape(studentLogits, teacherProbsT) {
		return 0, nil, fmt.Errorf("%w: student %v vs teacher %v", ErrShape, studentLogits.Shape(), teacherProbsT.Shape())
	}
	hardLoss, hardGrad, err := CrossEntropy(studentLogits, labels)
	if err != nil {
		return 0, nil, err
	}
	studentT, err := SoftmaxT(studentLogits, temperature)
	if err != nil {
		return 0, nil, err
	}
	batch, classes := studentLogits.Dim(0), studentLogits.Dim(1)
	softGrad := tensor.New(batch, classes)
	var softLoss float64
	t2 := temperature * temperature
	for b := 0; b < batch; b++ {
		for j := 0; j < classes; j++ {
			p := float64(teacherProbsT.At(b, j))
			q := float64(studentT.At(b, j))
			if p > 1e-12 {
				if q < 1e-12 {
					q = 1e-12
				}
				softLoss += p * math.Log(p/q)
			}
			// d/dlogit of T²·KL is T·(q − p); fold batch mean in below.
			softGrad.Set(float32(temperature*(q-p)/float64(batch)), b, j)
		}
	}
	softLoss = softLoss / float64(batch) * t2

	total := alpha*hardLoss + (1-alpha)*softLoss
	grad := tensor.New(batch, classes)
	if err := grad.AddScaled(hardGrad, float32(alpha)); err != nil {
		return 0, nil, err
	}
	if err := grad.AddScaled(softGrad, float32(1-alpha)); err != nil {
		return 0, nil, err
	}
	return total, grad, nil
}

// Accuracy returns the fraction of rows of x whose predicted class matches
// labels.
func Accuracy(m *Model, x *tensor.Tensor, labels []int) (float64, error) {
	pred, err := m.Predict(x)
	if err != nil {
		return 0, err
	}
	if len(pred) != len(labels) {
		return 0, fmt.Errorf("%w: %d predictions vs %d labels", ErrShape, len(pred), len(labels))
	}
	if len(labels) == 0 {
		return 0, nil
	}
	correct := 0
	for i := range pred {
		if pred[i] == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels)), nil
}

// AccuracyLogits returns the fraction of rows of a 2-D logits (or
// probability) tensor whose argmax matches the label — the accuracy
// loop shared by the model path and callers that already hold logits
// from another executor (compiled plans).
func AccuracyLogits(logits *tensor.Tensor, labels []int) (float64, error) {
	if logits.Dims() != 2 {
		return 0, fmt.Errorf("%w: accuracy needs 2-D logits, got %v", ErrShape, logits.Shape())
	}
	if logits.Dim(0) != len(labels) {
		return 0, fmt.Errorf("%w: %d logit rows vs %d labels", ErrShape, logits.Dim(0), len(labels))
	}
	if len(labels) == 0 {
		return 0, nil
	}
	classes := logits.Dim(1)
	correct := 0
	for b, want := range labels {
		row := logits.Data()[b*classes : (b+1)*classes]
		arg := 0
		for j, v := range row {
			if v > row[arg] {
				arg = j
			}
		}
		if arg == want {
			correct++
		}
	}
	return float64(correct) / float64(len(labels)), nil
}

// TopConfidence runs the model on a single batch and returns, per row, the
// argmax class and its softmax probability. DDNN-style early exit uses the
// probability as the confidence score.
func TopConfidence(m *Model, x *tensor.Tensor) ([]int, []float64, error) {
	logits, err := m.Forward(x, false)
	if err != nil {
		return nil, nil, err
	}
	probs, err := Softmax(logits)
	if err != nil {
		return nil, nil, err
	}
	cls, conf, err := topConfidence(probs, nil, nil)
	return cls, conf, err
}

// TopConfidenceArena is TopConfidence for the zero-allocation serving
// path: activations come from the arena and the class/confidence outputs
// reuse the caller's buffers (pass the previous call's slices back in;
// they are returned re-sliced, grown only when the batch outgrows them).
func TopConfidenceArena(m *Model, x *tensor.Tensor, a *tensor.Arena, cls []int, conf []float64) ([]int, []float64, error) {
	logits, err := m.ForwardArena(x, a)
	if err != nil {
		return nil, nil, err
	}
	probs := a.NewUninitLike(logits)
	if err := SoftmaxInto(probs, logits); err != nil {
		return nil, nil, err
	}
	return topConfidence(probs, cls, conf)
}

// topConfidence extracts per-row argmax and probability from a 2-D
// probability tensor into (possibly recycled) cls/conf buffers.
func topConfidence(probs *tensor.Tensor, cls []int, conf []float64) ([]int, []float64, error) {
	if probs.Dims() != 2 {
		return nil, nil, fmt.Errorf("%w: confidence needs 2-D probabilities, got %v", ErrShape, probs.Shape())
	}
	batch, classes := probs.Dim(0), probs.Dim(1)
	if cap(cls) < batch {
		cls = make([]int, batch)
	}
	cls = cls[:batch]
	if cap(conf) < batch {
		conf = make([]float64, batch)
	}
	conf = conf[:batch]
	for b := 0; b < batch; b++ {
		row := probs.Data()[b*classes : (b+1)*classes]
		arg := 0
		for j, v := range row {
			if v > row[arg] {
				arg = j
			}
		}
		cls[b] = arg
		conf[b] = float64(row[arg])
	}
	return cls, conf, nil
}
