package nn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Model wire format ("OEIM"): a JSON header describing the architecture
// followed by raw little-endian float32 parameter data in Params() order,
// then batch-norm running statistics. This is the artifact the cloud model
// registry serves and edges download (Figure 3, dataflow 2).
const modelMagic = "OEIM"

// ErrBadModel indicates a corrupt or incompatible serialized model.
var ErrBadModel = errors.New("nn: bad model data")

type modelHeader struct {
	Name       string      `json:"name"`
	InputShape []int       `json:"input_shape"`
	Layers     []LayerSpec `json:"layers"`
	ParamElems int64       `json:"param_elems"`
	StatElems  int64       `json:"stat_elems"`
}

// WriteModel serializes m to w.
func WriteModel(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	stats := bnStats(m)
	hdr := modelHeader{
		Name:       m.Name,
		InputShape: m.InputShape,
		Layers:     m.Specs(),
		ParamElems: m.ParamCount(),
		StatElems:  int64(len(stats)),
	}
	hj, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("nn: marshal model header: %w", err)
	}
	if _, err := bw.WriteString(modelMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(hj))); err != nil {
		return err
	}
	if _, err := bw.Write(hj); err != nil {
		return err
	}
	buf := make([]byte, 4)
	writeF32 := func(v float32) error {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
		_, err := bw.Write(buf)
		return err
	}
	for _, p := range m.Params() {
		for _, v := range p.Data() {
			if err := writeF32(v); err != nil {
				return err
			}
		}
	}
	for _, v := range stats {
		if err := writeF32(v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadModel deserializes a model written by WriteModel.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrBadModel, err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadModel, magic)
	}
	var hlen uint32
	if err := binary.Read(br, binary.LittleEndian, &hlen); err != nil {
		return nil, fmt.Errorf("%w: header length: %v", ErrBadModel, err)
	}
	if hlen > 1<<20 {
		return nil, fmt.Errorf("%w: header length %d too large", ErrBadModel, hlen)
	}
	hj := make([]byte, hlen)
	if _, err := io.ReadFull(br, hj); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadModel, err)
	}
	var hdr modelHeader
	if err := json.Unmarshal(hj, &hdr); err != nil {
		return nil, fmt.Errorf("%w: header json: %v", ErrBadModel, err)
	}
	m, err := NewModel(hdr.Name, hdr.InputShape, hdr.Layers)
	if err != nil {
		return nil, fmt.Errorf("%w: rebuild: %v", ErrBadModel, err)
	}
	if m.ParamCount() != hdr.ParamElems {
		return nil, fmt.Errorf("%w: param count %d vs header %d", ErrBadModel, m.ParamCount(), hdr.ParamElems)
	}
	buf := make([]byte, 4)
	readF32 := func() (float32, error) {
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, err
		}
		return math.Float32frombits(binary.LittleEndian.Uint32(buf)), nil
	}
	for _, p := range m.Params() {
		d := p.Data()
		for i := range d {
			v, err := readF32()
			if err != nil {
				return nil, fmt.Errorf("%w: params: %v", ErrBadModel, err)
			}
			d[i] = v
		}
	}
	want := bnStatLen(m)
	if int64(want) != hdr.StatElems {
		return nil, fmt.Errorf("%w: stat count %d vs header %d", ErrBadModel, want, hdr.StatElems)
	}
	stats := make([]float32, want)
	for i := range stats {
		v, err := readF32()
		if err != nil {
			return nil, fmt.Errorf("%w: stats: %v", ErrBadModel, err)
		}
		stats[i] = v
	}
	setBNStats(m, stats)
	return m, nil
}

// EncodeModel serializes m to a byte slice.
func EncodeModel(m *Model) ([]byte, error) {
	var b bytes.Buffer
	if err := WriteModel(&b, m); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// DecodeModel deserializes a model from a byte slice.
func DecodeModel(data []byte) (*Model, error) {
	return ReadModel(bytes.NewReader(data))
}

func bnStats(m *Model) []float32 {
	var out []float32
	for _, l := range m.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			out = append(out, bn.RunMean.Data()...)
			out = append(out, bn.RunVar.Data()...)
		}
	}
	return out
}

func bnStatLen(m *Model) int {
	n := 0
	for _, l := range m.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			n += 2 * bn.Features
		}
	}
	return n
}

func setBNStats(m *Model, stats []float32) {
	i := 0
	for _, l := range m.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			copy(bn.RunMean.Data(), stats[i:i+bn.Features])
			i += bn.Features
			copy(bn.RunVar.Data(), stats[i:i+bn.Features])
			i += bn.Features
		}
	}
}
