package nn

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"openei/internal/tensor"
)

// numericalGrad estimates dLoss/dparam[i] by central differences.
func numericalGrad(t *testing.T, m *Model, x *tensor.Tensor, labels []int, p *tensor.Tensor, i int) float64 {
	t.Helper()
	const eps = 1e-3
	orig := p.Data()[i]
	p.Data()[i] = orig + eps
	lp, _, err := lossOf(m, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	p.Data()[i] = orig - eps
	lm, _, err := lossOf(m, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	p.Data()[i] = orig
	return (lp - lm) / (2 * eps)
}

func lossOf(m *Model, x *tensor.Tensor, labels []int) (float64, *tensor.Tensor, error) {
	logits, err := m.Forward(x, false)
	if err != nil {
		return 0, nil, err
	}
	return CrossEntropy(logits, labels)
}

func checkGradients(t *testing.T, m *Model, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	m.ZeroGrads()
	logits, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := CrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Backward(grad); err != nil {
		t.Fatal(err)
	}
	params, grads := m.Params(), m.Grads()
	rng := rand.New(rand.NewSource(99))
	for pi, p := range params {
		// Spot-check a few random entries per parameter tensor.
		checks := 4
		if p.Len() < checks {
			checks = p.Len()
		}
		for c := 0; c < checks; c++ {
			i := rng.Intn(p.Len())
			want := numericalGrad(t, m, x, labels, p, i)
			got := float64(grads[pi].Data()[i])
			if math.Abs(want-got) > tol*(1+math.Abs(want)) {
				t.Errorf("param %d elem %d: analytic grad %v vs numeric %v", pi, i, got, want)
			}
		}
	}
}

func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := MustModel("mlp", []int{6}, []LayerSpec{
		{Type: "dense", In: 6, Out: 5},
		{Type: "relu"},
		{Type: "dense", In: 5, Out: 3},
	})
	m.InitParams(rng)
	x := tensor.New(4, 6)
	x.Rand(rng, 1)
	checkGradients(t, m, x, []int{0, 1, 2, 1}, 2e-2)
}

func TestConvGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv := tensor.Conv2DSpec{InC: 1, InH: 6, InW: 6, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	pool := tensor.PoolSpec{C: 2, H: 6, W: 6, K: 2, Stride: 2}
	m := MustModel("cnn", []int{1, 6, 6}, []LayerSpec{
		{Type: "conv2d", Conv: &conv},
		{Type: "relu"},
		{Type: "maxpool", Pool: &pool},
		{Type: "flatten"},
		{Type: "dense", In: 2 * 3 * 3, Out: 3},
	})
	m.InitParams(rng)
	x := tensor.New(2, 1, 6, 6)
	x.Rand(rng, 1)
	checkGradients(t, m, x, []int{0, 2}, 3e-2)
}

func TestDepthwiseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dw := tensor.Conv2DSpec{InC: 2, InH: 5, InW: 5, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	m := MustModel("dw", []int{2, 5, 5}, []LayerSpec{
		{Type: "dwconv2d", Conv: &dw},
		{Type: "relu"},
		{Type: "gap"},
		{Type: "dense", In: 2, Out: 2},
	})
	m.InitParams(rng)
	x := tensor.New(2, 2, 5, 5)
	x.Rand(rng, 1)
	checkGradients(t, m, x, []int{1, 0}, 3e-2)
}

func TestBatchNormGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := MustModel("bn", []int{4}, []LayerSpec{
		{Type: "dense", In: 4, Out: 6},
		{Type: "batchnorm", Features: 6},
		{Type: "relu"},
		{Type: "dense", In: 6, Out: 3},
	})
	m.InitParams(rng)
	x := tensor.New(5, 4)
	x.Rand(rng, 1)

	// BatchNorm in training mode recomputes batch statistics per forward,
	// so the numeric check must run in train mode too (dropout absent).
	m.ZeroGrads()
	logits, err := m.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{0, 1, 2, 0, 1}
	_, grad, err := CrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Backward(grad); err != nil {
		t.Fatal(err)
	}
	params, grads := m.Params(), m.Grads()
	const eps = 1e-2
	for pi, p := range params {
		for _, i := range []int{0, p.Len() / 2} {
			orig := p.Data()[i]
			p.Data()[i] = orig + eps
			lg, _ := m.Forward(x, true)
			lp, _, _ := CrossEntropy(lg, labels)
			p.Data()[i] = orig - eps
			lg, _ = m.Forward(x, true)
			lm, _, _ := CrossEntropy(lg, labels)
			p.Data()[i] = orig
			want := (lp - lm) / (2 * eps)
			got := float64(grads[pi].Data()[i])
			if math.Abs(want-got) > 5e-2*(1+math.Abs(want)) {
				t.Errorf("param %d elem %d: analytic %v vs numeric %v", pi, i, got, want)
			}
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	logits := tensor.New(7, 9)
	logits.Rand(rng, 5)
	p, err := Softmax(logits)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 7; b++ {
		var s float64
		for j := 0; j < 9; j++ {
			v := p.At(b, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v outside [0,1]", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("softmax row %d sums to %v", b, s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := tensor.MustFrom([]float32{1000, 1001, 999}, 1, 3)
	p, err := Softmax(logits)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax produced %v on large logits", v)
		}
	}
}

func TestSoftmaxTFlattensDistribution(t *testing.T) {
	logits := tensor.MustFrom([]float32{2, 0, -2}, 1, 3)
	p1, err := SoftmaxT(logits, 1)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := SoftmaxT(logits, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Higher temperature must reduce the top probability.
	if p5.At(0, 0) >= p1.At(0, 0) {
		t.Errorf("T=5 top prob %v not flatter than T=1 %v", p5.At(0, 0), p1.At(0, 0))
	}
	if _, err := SoftmaxT(logits, 0); err == nil {
		t.Error("SoftmaxT(0) should fail")
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.New(2, 4)
	loss, grad, err := CrossEntropy(logits, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Errorf("uniform CE loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// Gradient rows sum to zero (softmax minus one-hot).
	for b := 0; b < 2; b++ {
		var s float64
		for j := 0; j < 4; j++ {
			s += float64(grad.At(b, j))
		}
		if math.Abs(s) > 1e-6 {
			t.Errorf("grad row %d sums to %v, want 0", b, s)
		}
	}
}

func TestCrossEntropyBadLabels(t *testing.T) {
	logits := tensor.New(1, 3)
	if _, _, err := CrossEntropy(logits, []int{7}); !errors.Is(err, ErrShape) {
		t.Errorf("out-of-range label: err = %v, want ErrShape", err)
	}
	if _, _, err := CrossEntropy(logits, []int{0, 1}); !errors.Is(err, ErrShape) {
		t.Errorf("label count mismatch: err = %v, want ErrShape", err)
	}
}

func TestTrainLearnsLinearlySeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Two Gaussian blobs in 2-D.
	n := 200
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		cx := float32(-1)
		if cls == 1 {
			cx = 1
		}
		x.Set(cx+float32(rng.NormFloat64())*0.4, i, 0)
		x.Set(cx+float32(rng.NormFloat64())*0.4, i, 1)
		y[i] = cls
	}
	m := MustModel("blobs", []int{2}, []LayerSpec{
		{Type: "dense", In: 2, Out: 8},
		{Type: "relu"},
		{Type: "dense", In: 8, Out: 2},
	})
	m.InitParams(rng)
	_, _, err := Train(m, Dataset{X: x, Y: y}, TrainConfig{Epochs: 20, BatchSize: 16, LR: 0.1, Momentum: 0.9, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(m, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("accuracy after training = %v, want ≥ 0.95", acc)
	}
}

func TestTrainRequiresRand(t *testing.T) {
	m := MustModel("m", []int{2}, []LayerSpec{{Type: "dense", In: 2, Out: 2}})
	if _, _, err := Train(m, Dataset{X: tensor.New(1, 2), Y: []int{0}}, TrainConfig{}); err == nil {
		t.Error("Train without Rand should fail")
	}
}

func TestTrainFrozenMaskKeepsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := MustModel("m", []int{3}, []LayerSpec{
		{Type: "dense", In: 3, Out: 4},
		{Type: "relu"},
		{Type: "dense", In: 4, Out: 2},
	})
	m.InitParams(rng)
	frozen := FreezeAllButHead(m, 1)
	// The first dense layer (params 0 and 1) must be frozen.
	if !frozen[0] || !frozen[1] {
		t.Fatalf("FreezeAllButHead mask = %v, want first dense frozen", frozen)
	}
	if frozen[2] || frozen[3] {
		t.Fatalf("FreezeAllButHead mask = %v, want head unfrozen", frozen)
	}
	before := m.Params()[0].Clone()
	x := tensor.New(10, 3)
	x.Rand(rng, 1)
	y := make([]int, 10)
	for i := range y {
		y[i] = i % 2
	}
	if _, _, err := Train(m, Dataset{X: x, Y: y}, TrainConfig{Epochs: 3, BatchSize: 5, LR: 0.1, FrozenMask: frozen, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(before, m.Params()[0], 0) {
		t.Error("frozen parameters changed during training")
	}
}

func TestDatasetSliceAndGather(t *testing.T) {
	x := tensor.MustFrom([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	d := Dataset{X: x, Y: []int{7, 8, 9}}
	s, err := d.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Samples() != 2 || s.Y[0] != 8 || s.X.At(0, 0) != 3 {
		t.Errorf("Slice = %+v", s)
	}
	g, err := d.Gather([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if g.Y[0] != 9 || g.Y[1] != 7 || g.X.At(1, 1) != 2 {
		t.Errorf("Gather = %+v", g)
	}
	if _, err := d.Slice(2, 1); !errors.Is(err, ErrShape) {
		t.Errorf("bad slice: err = %v, want ErrShape", err)
	}
	if _, err := d.Gather([]int{5}); !errors.Is(err, ErrShape) {
		t.Errorf("bad gather: err = %v, want ErrShape", err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	conv := tensor.Conv2DSpec{InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	pool := tensor.PoolSpec{C: 4, H: 8, W: 8, K: 2, Stride: 2}
	m := MustModel("roundtrip", []int{1, 8, 8}, []LayerSpec{
		{Type: "conv2d", Conv: &conv},
		{Type: "batchnorm", Features: 4},
		{Type: "relu"},
		{Type: "maxpool", Pool: &pool},
		{Type: "flatten"},
		{Type: "dense", In: 4 * 4 * 4, Out: 5},
	})
	m.InitParams(rng)
	// Touch the batchnorm running stats by a forward pass in train mode.
	x := tensor.New(3, 1, 8, 8)
	x.Rand(rng, 1)
	if _, err := m.Forward(x, true); err != nil {
		t.Fatal(err)
	}

	data, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != m.Name || m2.ParamCount() != m.ParamCount() {
		t.Fatalf("decoded model %q with %d params, want %q/%d", m2.Name, m2.ParamCount(), m.Name, m.ParamCount())
	}
	y1, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := m2.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(y1, y2, 1e-6) {
		t.Error("decoded model produces different outputs")
	}
}

func TestDecodeModelCorrupt(t *testing.T) {
	if _, err := DecodeModel([]byte("XXXX")); !errors.Is(err, ErrBadModel) {
		t.Errorf("bad magic: err = %v, want ErrBadModel", err)
	}
	m := MustModel("m", []int{2}, []LayerSpec{{Type: "dense", In: 2, Out: 2}})
	data, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeModel(data[:len(data)-3]); !errors.Is(err, ErrBadModel) {
		t.Errorf("truncated: err = %v, want ErrBadModel", err)
	}
	var junk bytes.Buffer
	junk.WriteString("OEIM")
	junk.Write([]byte{255, 255, 255, 255})
	if _, err := DecodeModel(junk.Bytes()); !errors.Is(err, ErrBadModel) {
		t.Errorf("huge header: err = %v, want ErrBadModel", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := MustModel("m", []int{3}, []LayerSpec{
		{Type: "dense", In: 3, Out: 3},
	})
	m.InitParams(rng)
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	c.Params()[0].Fill(0)
	if m.Params()[0].AbsMax() == 0 {
		t.Error("mutating the clone changed the original")
	}
}

func TestModelFLOPsAndMemory(t *testing.T) {
	conv := tensor.Conv2DSpec{InC: 3, InH: 16, InW: 16, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	m := MustModel("cost", []int{3, 16, 16}, []LayerSpec{
		{Type: "conv2d", Conv: &conv},
		{Type: "relu"},
		{Type: "flatten"},
		{Type: "dense", In: 8 * 16 * 16, Out: 10},
	})
	wantConv := int64(2 * 8 * 16 * 16 * 3 * 3 * 3)
	wantDense := int64(2 * 8 * 16 * 16 * 10)
	if got := m.FLOPs(1); got != wantConv+wantDense {
		t.Errorf("FLOPs(1) = %d, want %d", got, wantConv+wantDense)
	}
	if got := m.FLOPs(2); got != 2*(wantConv+wantDense) {
		t.Errorf("FLOPs(2) = %d, want %d", got, 2*(wantConv+wantDense))
	}
	if m.WeightBytes() != 4*m.ParamCount() {
		t.Error("WeightBytes must be 4 bytes per param")
	}
	if m.ActivationBytes() <= 0 {
		t.Error("ActivationBytes must be positive")
	}
}

func TestDistillLossGradientDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	student := MustModel("student", []int{4}, []LayerSpec{
		{Type: "dense", In: 4, Out: 3},
	})
	student.InitParams(rng)
	x := tensor.New(6, 4)
	x.Rand(rng, 1)
	labels := []int{0, 1, 2, 0, 1, 2}
	teacherProbs := tensor.New(6, 3)
	for i := range labels {
		for j := 0; j < 3; j++ {
			if j == labels[i] {
				teacherProbs.Set(0.8, i, j)
			} else {
				teacherProbs.Set(0.1, i, j)
			}
		}
	}
	logits, err := student.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	l1, grad, err := DistillLoss(logits, teacherProbs, labels, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// One SGD step along -grad through the network must reduce the loss.
	student.ZeroGrads()
	if err := student.Backward(grad); err != nil {
		t.Fatal(err)
	}
	opt := NewSGD(0.1, 0, 0)
	if err := opt.Step(student.Params(), student.Grads()); err != nil {
		t.Fatal(err)
	}
	logits2, err := student.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	l2, _, err := DistillLoss(logits2, teacherProbs, labels, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if l2 >= l1 {
		t.Errorf("distill loss did not decrease: %v -> %v", l1, l2)
	}
}

func TestDistillTrainImprovesStudent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 120
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		cx := float32(-1)
		if cls == 1 {
			cx = 1
		}
		x.Set(cx+float32(rng.NormFloat64())*0.3, i, 0)
		x.Set(float32(rng.NormFloat64())*0.3, i, 1)
		y[i] = cls
	}
	data := Dataset{X: x, Y: y}
	teacher := MustModel("teacher", []int{2}, []LayerSpec{
		{Type: "dense", In: 2, Out: 16},
		{Type: "relu"},
		{Type: "dense", In: 16, Out: 2},
	})
	teacher.InitParams(rng)
	if _, _, err := Train(teacher, data, TrainConfig{Epochs: 15, BatchSize: 16, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	student := MustModel("student", []int{2}, []LayerSpec{
		{Type: "dense", In: 2, Out: 2},
	})
	student.InitParams(rng)
	if _, err := DistillTrain(student, teacher, data, 3, 0.3, TrainConfig{Epochs: 15, BatchSize: 16, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(student, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("distilled student accuracy = %v, want ≥ 0.9", acc)
	}
}

func TestTopConfidence(t *testing.T) {
	m := MustModel("m", []int{2}, []LayerSpec{{Type: "dense", In: 2, Out: 2}})
	d := m.Layers[0].(*Dense)
	// Make class 1 always win with a large margin.
	d.W.Set(5, 1, 0)
	x := tensor.MustFrom([]float32{1, 0}, 1, 2)
	cls, conf, err := TopConfidence(m, x)
	if err != nil {
		t.Fatal(err)
	}
	if cls[0] != 1 {
		t.Errorf("class = %d, want 1", cls[0])
	}
	if conf[0] < 0.9 {
		t.Errorf("confidence = %v, want > 0.9", conf[0])
	}
}

func TestBuildLayerErrors(t *testing.T) {
	bad := []LayerSpec{
		{Type: "nope"},
		{Type: "dense", In: 0, Out: 3},
		{Type: "conv2d"},
		{Type: "maxpool"},
		{Type: "batchnorm"},
		{Type: "conv2d", Conv: &tensor.Conv2DSpec{}},
	}
	for _, s := range bad {
		if _, err := BuildLayer(s); !errors.Is(err, ErrBadSpec) {
			t.Errorf("BuildLayer(%+v): err = %v, want ErrBadSpec", s, err)
		}
	}
}

func TestBackwardBeforeForwardFails(t *testing.T) {
	layers := []Layer{
		NewDense(2, 2),
		&ReLU{},
		&Flatten{},
		NewConv2D(tensor.Conv2DSpec{InC: 1, InH: 2, InW: 2, OutC: 1, KH: 1, KW: 1, Stride: 1}),
		NewMaxPool(tensor.PoolSpec{C: 1, H: 2, W: 2, K: 2, Stride: 2}),
		&GlobalAvgPool{},
	}
	g := tensor.New(1, 2)
	for _, l := range layers {
		if _, err := l.Backward(g); !errors.Is(err, ErrNoForward) {
			t.Errorf("%s: Backward before Forward: err = %v, want ErrNoForward", l.Kind(), err)
		}
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDropout(0.5)
	d.SetRand(rng)
	x := tensor.New(1, 1000)
	x.Fill(1)
	out, err := d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range out.Data() {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropout 0.5 zeroed %d of 1000, want ≈500", zeros)
	}
	// Inference mode is identity.
	out2, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(out2, x, 0) {
		t.Error("dropout at inference must be the identity")
	}
	// Mean is approximately preserved in training mode (inverted dropout).
	if mean := out.Sum() / 1000; mean < 0.8 || mean > 1.2 {
		t.Errorf("inverted dropout mean = %v, want ≈1", mean)
	}
}

func TestDenseQuantizedPathCloseToFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := NewDense(32, 16)
	d.W.GlorotInit(rng, 32, 16)
	x := tensor.New(4, 32)
	x.Rand(rng, 1)
	y1, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	d.QW = tensor.Quantize(d.W)
	y2, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(y1, y2, 0.1) {
		t.Error("quantized dense path deviates too much from float path")
	}
}

func TestModelOutputShapeAndClasses(t *testing.T) {
	m := MustModel("m", []int{1, 4, 4}, []LayerSpec{
		{Type: "flatten"},
		{Type: "dense", In: 16, Out: 7},
	})
	out, err := m.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 7 {
		t.Errorf("OutputShape = %v, want [7]", out)
	}
	if m.Classes() != 7 {
		t.Errorf("Classes = %d, want 7", m.Classes())
	}
}
