// Package plan compiles a frozen nn.Model into an executable inference
// plan: a flat graph IR of typed ops with deterministic buffer
// assignments, run through one of two backends —
//
//   - float32: reproduces the arena layer walk bit for bit on graphs
//     without a foldable batchnorm adjacency (the golden tests in
//     plan_test.go assert exact equality against Model.ForwardArena
//     across the whole zoo; folded batchnorms reassociate the
//     per-channel scale and agree to float rounding — use NoFusion for
//     exact parity), minus the dispatch the walk pays for layers that no
//     longer exist after optimization;
//   - int8: genuine quantized execution — dense and convolution layers
//     run int8×int8→int32 kernels over the installed weight artifacts,
//     with per-layer activation scales calibrated from a min/max sweep
//     over a calibration batch (explicit, or widening over the first
//     served batches) and activations requantized at each quantized
//     op's input; once the scales freeze, the calibration-only float
//     weights are released.
//
// Compilation also performs the graph-level optimizations a sequential
// layer walk cannot:
//
//   - BatchNorm folding: an inference-mode batchnorm directly after a
//     convolution or dense layer folds into that layer's weights and
//     bias, deleting the op;
//   - ReLU fusion: a ReLU following a dense/conv/depthwise/batchnorm op
//     becomes a clamp in the producer's epilogue instead of a separate
//     pass over the activation;
//   - dead-op elimination: Dropout (identity at inference) is dropped,
//     and Flatten lowers to a zero-copy view.
//
// A Plan is the serving replica's execution engine: it owns an arena that
// is reset per request, so steady-state inference allocates nothing. Like
// the replica that owns it, a Plan is not safe for concurrent use.
package plan

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"openei/internal/nn"
	"openei/internal/tensor"
)

// Backend selects the kernel set a compiled plan executes with.
type Backend string

// Backends. Tier names advertise these: a "{model}-int8" serving tier is
// a plan compiled with the Int8 backend, not a relabeled float model.
const (
	// Float32 runs the full-precision kernels of the arena path.
	Float32 Backend = "float32"
	// Int8 runs dense and convolution layers on int8 kernels with
	// calibrated activation quantization; the remaining (cheap) ops stay
	// in float.
	Int8 Backend = "int8"
	// Int4 stores dense and convolution weights nibble-packed with
	// per-output-channel scales (≈⅛ the float bytes resident) and
	// executes them on the int8 kernels after an unpack into pooled
	// scratch — int4 is a weight storage format riding the int8
	// execution path, including its calibration life cycle and fused
	// requantization chains.
	Int4 Backend = "int4"
)

// Package errors.
var (
	// ErrUnsupported is returned by Compile for layer types outside the
	// IR. Every built-in layer — including recurrent FastGRNN stacks,
	// which compile to first-class RNN step ops since the early-exit
	// revision — lowers; only custom Layer implementations hit this.
	ErrUnsupported = errors.New("plan: unsupported layer")
	// ErrBadBackend is returned for an unknown backend name.
	ErrBadBackend = errors.New("plan: unknown backend")
	// ErrShape is returned when an executed input does not match the
	// plan's compiled input shape.
	ErrShape = errors.New("plan: shape mismatch")
	// ErrCalibrationFrozen is returned by Calibrate once an int8 plan's
	// activation scales are frozen and the float reference weights have
	// been released.
	ErrCalibrationFrozen = errors.New("plan: calibration already frozen")
)

// selfCalibrationBatches is the widening window of a lazily calibrated
// int8 plan: activation ranges accumulate over this many served batches
// before the scales freeze and the float reference weights are
// released. One batch would gamble the whole tier's accuracy on its
// first request being representative.
const selfCalibrationBatches = 8

// opKind enumerates the IR's typed ops.
type opKind int

const (
	opDense opKind = iota
	opConv
	opDwConv
	opMaxPool
	opGAP
	opBatchNorm
	opReLU
	opView
	opRNN
)

func (k opKind) String() string {
	switch k {
	case opDense:
		return "dense"
	case opConv:
		return "conv2d"
	case opDwConv:
		return "dwconv2d"
	case opMaxPool:
		return "maxpool"
	case opGAP:
		return "gap"
	case opBatchNorm:
		return "batchnorm"
	case opReLU:
		return "relu"
	case opView:
		return "view"
	case opRNN:
		return "fastgrnn"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// rnnStep is the compiled form of one FastGRNN layer: pre-transposed
// weights in the streaming GEMM layout plus the gate constants, so the
// per-step cell is two MatMulInto calls and one fused elementwise pass —
// bitwise identical to FastGRNN.Forward.
type rnnStep struct {
	t, d, h  int
	wt, ut   *tensor.Tensor // (D, H) and (H, H): W and U transposed once
	bz, bh   []float32
	zeta, nu float32
}

// op is one node of the flat IR. Weight fields reference (or, when an
// optimization rewrote them, privately copy) the source model's tensors;
// the model must not be mutated while the plan is in use — the same
// contract FreezeInference imposes.
type op struct {
	kind      opKind
	fusedReLU bool
	int8      bool // execute on the int8 kernel (dense/conv, Int8 backend)

	// emitQ marks an int8 op whose consumer (through any views) is also
	// int8: its epilogue requantizes straight into an int8 activation
	// buffer with the consumer's scale (ops[qNext].inScale, read at run
	// time so calibration widening is honored), skipping the float
	// materialize-then-requantize round trip between quantized ops.
	emitQ bool
	qNext int

	outShape []int // per-sample output shape

	// dense: w is the lowered float weight matrix (out, in); wt its
	// transpose, the float kernel's streaming layout.
	// conv/dwconv: w is the kernel in the layer's matmul-ready layout.
	// On int8 ops both are calibration-only and are released once the
	// activation scales freeze; denseIn/denseOut keep the dimensions.
	w, wt *tensor.Tensor
	b     *tensor.Tensor

	denseIn, denseOut int

	conv tensor.Conv2DSpec
	pool tensor.PoolSpec

	// batchnorm (unfolded): per-feature inference statistics. std is
	// precomputed sqrt(var+eps), the exact float32 the layer walk derives
	// inline.
	gamma, beta, mean, std []float32

	// int8 artifacts: the quantized weights and the calibrated activation
	// scale this op quantizes its input with. On the Int4 backend q4
	// replaces qw: the nibble-packed per-row-scaled artifact, unpacked to
	// int8 scratch at execution time.
	qw       *tensor.QTensor
	q4       *tensor.Q4Tensor
	inScale  float32
	calibMax float32

	// rnn holds the compiled FastGRNN cell of an opRNN node.
	rnn *rnnStep
}

// Options configure compilation.
type Options struct {
	// Backend selects the kernel set; empty means Float32.
	Backend Backend
	// Calibration, for int8 plans, is an optional batched input run
	// through the float reference at compile time to set the activation
	// scales. Nil defers calibration to the first executed batch.
	Calibration *tensor.Tensor
	// NoFusion disables BatchNorm folding and ReLU fusion (dead-op
	// elimination always runs); used by tests that isolate kernel
	// behavior from graph rewrites.
	NoFusion bool
	// ExitThreshold sets the initial confidence threshold of an
	// early-exit-capable plan (a [view…, fastgrnn, head…] graph): during
	// InferBatch the classification head runs after every RNN step and a
	// sample retires from the batch at the first step whose softmax
	// confidence reaches the threshold. Values outside (0, 1] — including
	// the zero value and +Inf — disable early exit: every sample consumes
	// the full window, identically to the no-exit plan. The threshold is
	// a live knob; see SetExitThreshold.
	ExitThreshold float64
}

// Plan is a compiled model: the IR, its backend, and the execution state
// (arena, int8 scratch) of one serving replica. Not safe for concurrent
// use.
type Plan struct {
	name       string
	backend    Backend
	inputShape []int
	classes    int
	ops        []op

	calibrated bool
	calibRuns  int
	// released marks the end of calibration life: scales are frozen and
	// the int8 ops' float reference weights are freed, so the plan's
	// residency really is the int8 artifact.
	released bool

	arena *tensor.Arena
	qin   []int8  // int8 dense input scratch, grown once
	qacc  []int32 // int8 dense accumulator rows, grown once
	// Int4 execution scratch, grown once to the largest dense layer:
	// q4w receives the nibble-unpacked int8 weights, qscales the
	// per-output-channel effective scales (inScale·rowScale).
	q4w     []int8
	qscales []float32
	// qact is the fused-chain activation ping-pong: emitQ producers write
	// int8 activations into one slot while consuming the other, grown
	// once per plan so the steady state stays allocation-free.
	qact [2][]int8

	// Early-exit state. exitAt is the op index of the RNN op when the
	// graph has the [view…, fastgrnn, head…] shape early exit requires
	// (-1 otherwise); exitThrBits holds the live confidence threshold as
	// float64 bits — the one Plan field that may be written from another
	// goroutine (the autopilot's knob), hence atomic. liveIdx/liveRows
	// are the mid-batch repack scratch, grown once.
	exitAt      int
	exitThrBits atomic.Uint64
	liveIdx     []int
	liveRows    []int
	stepsBuf    []int // InferBatch's recycled steps buffer

	// softmax/argmax recycled output buffers (InferBatch contract).
	flops    int64 // per-sample forward cost, for cost-model consumers
	actBytes int64
}

// Compile lowers m into an executable plan. The model is read, never
// mutated; weights rewritten by optimization (batchnorm folds) are
// private copies, everything else is referenced — so the model must stay
// unmutated while the plan is live (compile from a private clone, as the
// serving replicas do). Every built-in layer lowers — including FastGRNN,
// whose steps compile to a first-class RNN op; only custom Layer
// implementations return ErrUnsupported.
func Compile(m *nn.Model, opts Options) (*Plan, error) {
	backend := opts.Backend
	if backend == "" {
		backend = Float32
	}
	if backend != Float32 && backend != Int8 && backend != Int4 {
		return nil, fmt.Errorf("%w: %q", ErrBadBackend, backend)
	}
	p := &Plan{
		name:       m.Name,
		backend:    backend,
		inputShape: append([]int(nil), m.InputShape...),
		arena:      tensor.NewArena(0),
		flops:      m.FLOPs(1),
		actBytes:   m.ActivationBytes(),
		exitAt:     -1,
	}
	if err := p.lower(m); err != nil {
		return nil, err
	}
	p.eliminateIdentities()
	if !opts.NoFusion {
		p.foldBatchNorm()
		p.fuseReLU()
	}
	if err := p.materialize(); err != nil {
		return nil, err
	}
	p.linkQuantChain()
	if len(p.ops) > 0 {
		p.classes = prod(p.ops[len(p.ops)-1].outShape)
	} else {
		p.classes = prod(p.inputShape)
	}
	p.detectExitGraph()
	p.SetExitThreshold(opts.ExitThreshold)
	if p.quantized() && opts.Calibration != nil {
		// An explicit calibration batch is authoritative: freeze the
		// scales and release the float reference weights immediately.
		if err := p.Calibrate(opts.Calibration); err != nil {
			return nil, err
		}
		p.freezeCalibration()
	}
	return p, nil
}

// lower walks the layer list into raw IR ops (weights still in the
// layers' natural layouts; backend artifacts come later).
func (p *Plan) lower(m *nn.Model) error {
	shape := p.inputShape
	for i, l := range m.Layers {
		out, err := l.OutShape(shape)
		if err != nil {
			return fmt.Errorf("plan: %s layer %d (%s): %w", m.Name, i, l.Kind(), err)
		}
		o := op{outShape: out}
		switch t := l.(type) {
		case *nn.Dense:
			o.kind = opDense
			o.w = t.InferenceWeights()
			o.b = t.B
			// Reuse the installed artifact when the lowered weights are
			// exactly its expansion (no later fold invalidates it).
			o.qw = t.QW
		case *nn.Conv2D:
			o.kind = opConv
			o.w = t.W
			o.b = t.B
			o.conv = t.SpecV
			o.qw = t.QW
		case *nn.DepthwiseConv2D:
			o.kind = opDwConv
			o.w = t.W
			o.b = t.B
			o.conv = t.SpecV
		case *nn.MaxPool:
			o.kind = opMaxPool
			o.pool = t.SpecV
		case *nn.GlobalAvgPool:
			o.kind = opGAP
		case *nn.BatchNorm:
			o.kind = opBatchNorm
			o.gamma = t.Gamma.Data()
			o.beta = t.Beta.Data()
			o.mean = t.RunMean.Data()
			o.std = make([]float32, t.Features)
			for f := 0; f < t.Features; f++ {
				o.std[f] = float32(math.Sqrt(float64(t.RunVar.Data()[f] + t.Eps)))
			}
		case *nn.FastGRNN:
			o.kind = opRNN
			s := t.SpecV
			wt, err := tensor.Transpose(t.W)
			if err != nil {
				return fmt.Errorf("plan: %s layer %d (fastgrnn): %w", m.Name, i, err)
			}
			ut, err := tensor.Transpose(t.U)
			if err != nil {
				return fmt.Errorf("plan: %s layer %d (fastgrnn): %w", m.Name, i, err)
			}
			o.rnn = &rnnStep{
				t: s.T, d: s.D, h: s.H,
				wt: wt, ut: ut,
				bz: t.Bz.Data(), bh: t.Bh.Data(),
				zeta: nn.Sigmoid32(t.ZetaRaw.At(0)),
				nu:   nn.Sigmoid32(t.NuRaw.At(0)),
			}
		case *nn.ReLU:
			o.kind = opReLU
		case *nn.Flatten:
			o.kind = opView
		case *nn.Dropout:
			// Identity at inference: emit nothing.
			shape = out
			continue
		default:
			return fmt.Errorf("%w: %s layer %d (%s)", ErrUnsupported, m.Name, i, l.Kind())
		}
		p.ops = append(p.ops, o)
		shape = out
	}
	return nil
}

// eliminateIdentities drops ops that cannot change the activation: views
// whose input already has the target shape (flatten of 2-D input).
func (p *Plan) eliminateIdentities() {
	shape := p.inputShape
	kept := p.ops[:0]
	for _, o := range p.ops {
		if o.kind == opView && len(shape) == len(o.outShape) && prod(shape) == prod(o.outShape) {
			same := true
			for i := range shape {
				if shape[i] != o.outShape[i] {
					same = false
					break
				}
			}
			if same {
				continue
			}
		}
		kept = append(kept, o)
		shape = o.outShape
	}
	p.ops = kept
}

// foldBatchNorm folds an inference batchnorm directly following a conv or
// dense op into that op's weights and bias:
//
//	bn(y)_c = γ_c·(y_c−μ_c)/σ_c + β_c  ⇒  W'_c = W_c·(γ_c/σ_c),
//	B'_c = B_c·(γ_c/σ_c) + β_c − μ_c·γ_c/σ_c
//
// The producer's weights are copied before rewriting (the source model is
// never mutated), and its int8 artifact is invalidated — the folded
// weights are requantized by materialize.
func (p *Plan) foldBatchNorm() {
	kept := p.ops[:0]
	for _, o := range p.ops {
		if o.kind != opBatchNorm || len(kept) == 0 {
			kept = append(kept, o)
			continue
		}
		prev := &kept[len(kept)-1]
		var feats int
		switch prev.kind {
		case opConv:
			feats = prev.conv.OutC
		case opDense:
			feats = prev.w.Dim(0)
		default:
			kept = append(kept, o)
			continue
		}
		if feats != len(o.gamma) || prev.fusedReLU {
			kept = append(kept, o)
			continue
		}
		w := prev.w.Clone()
		b := prev.b.Clone()
		cols := w.Len() / feats
		for f := 0; f < feats; f++ {
			s := o.gamma[f] / o.std[f]
			row := w.Data()[f*cols : (f+1)*cols]
			for i := range row {
				row[i] *= s
			}
			b.Data()[f] = b.Data()[f]*s + o.beta[f] - o.mean[f]*s
		}
		prev.w, prev.b = w, b
		prev.qw = nil // artifact quantized the unfolded weights
		prev.outShape = o.outShape
	}
	p.ops = kept
}

// fuseReLU turns a standalone ReLU following a compute op into the
// producer's epilogue clamp. The clamp applies the identical elementwise
// max(0, ·), so float results are bit-identical to the unfused graph.
func (p *Plan) fuseReLU() {
	kept := p.ops[:0]
	for _, o := range p.ops {
		if o.kind == opReLU && len(kept) > 0 {
			prev := &kept[len(kept)-1]
			switch prev.kind {
			case opDense, opConv, opDwConv, opBatchNorm:
				if !prev.fusedReLU {
					prev.fusedReLU = true
					prev.outShape = o.outShape
					continue
				}
			}
		}
		kept = append(kept, o)
	}
	p.ops = kept
}

// materialize prepares backend artifacts after optimization: the
// pre-transposed float dense weights every backend's reference path uses,
// and the int8 weight tensors of quantized ops. Ops whose source layer
// already carried an int8 artifact (and whose weights no fold rewrote)
// run that exact artifact; everything else quantizes its lowered floats.
func (p *Plan) materialize() error {
	for i := range p.ops {
		o := &p.ops[i]
		switch o.kind {
		case opDense:
			wt, err := tensor.Transpose(o.w)
			if err != nil {
				return fmt.Errorf("plan: dense op %d: %w", i, err)
			}
			o.wt = wt
			o.denseOut, o.denseIn = o.w.Dim(0), o.w.Dim(1)
			switch p.backend {
			case Int8:
				o.int8 = true
				// The (out, in) artifact is already the transposed-B
				// layout the dot-form GEMM streams: run it directly.
				if o.qw == nil || o.qw.Len() != o.w.Len() {
					o.qw = tensor.Quantize(o.w)
				}
			case Int4:
				o.int8 = true
				o.qw = nil
				o.q4 = tensor.Quantize4(o.w, o.denseOut)
			}
		case opConv:
			switch p.backend {
			case Int8:
				o.int8 = true
				if o.qw == nil || o.qw.Len() != o.w.Len() {
					o.qw = tensor.Quantize(o.w)
				}
			case Int4:
				o.int8 = true
				o.qw = nil
				o.q4 = tensor.Quantize4(o.w, o.conv.OutC)
			}
		}
	}
	return nil
}

// linkQuantChain marks each int8 op whose consumer — looking through
// view ops (pure shape bookkeeping) and max pools (max commutes with the
// monotone quantization map, so pooling runs on the int8 buffer bitwise
// identically) — is also int8. Those ops fuse the consumer's
// requantization into their epilogue (see op.emitQ); the intervening ops
// operate on the int8 activation directly.
func (p *Plan) linkQuantChain() {
	for i := range p.ops {
		if !p.ops[i].int8 {
			continue
		}
		j := i + 1
		for j < len(p.ops) && (p.ops[j].kind == opView || p.ops[j].kind == opMaxPool) {
			j++
		}
		if j < len(p.ops) && p.ops[j].int8 {
			p.ops[i].emitQ = true
			p.ops[i].qNext = j
		}
	}
}

// detectExitGraph marks the plan early-exit-capable when the compiled op
// list has the EMI-RNN shape: optional leading views, exactly one RNN op,
// and a non-empty classification head producing a flat class vector. Only
// that shape admits the confidence epilogue — the head must consume h_t
// directly so it can be evaluated after every step.
func (p *Plan) detectExitGraph() {
	i := 0
	for i < len(p.ops) && p.ops[i].kind == opView {
		i++
	}
	if i >= len(p.ops) || p.ops[i].kind != opRNN {
		return
	}
	for j := i + 1; j < len(p.ops); j++ {
		if p.ops[j].kind == opRNN {
			return // a second recurrent stage breaks the per-step head
		}
	}
	last := p.ops[len(p.ops)-1]
	if i == len(p.ops)-1 || len(last.outShape) != 1 {
		return
	}
	p.exitAt = i
}

// SupportsEarlyExit reports whether the compiled graph admits the
// confidence-threshold epilogue (see detectExitGraph). Plans without the
// shape ignore SetExitThreshold.
func (p *Plan) SupportsEarlyExit() bool { return p.exitAt >= 0 }

// RNNSteps returns the window length T of an early-exit-capable plan, 0
// otherwise — the denominator of the mean-steps-used metric.
func (p *Plan) RNNSteps() int {
	if p.exitAt < 0 {
		return 0
	}
	return p.ops[p.exitAt].rnn.t
}

// SetExitThreshold installs a new live confidence threshold. Values in
// (0, 1] enable early exit at that confidence; anything else (zero, +Inf,
// NaN, negatives) disables it. Safe to call concurrently with inference —
// this is the autopilot's continuous knob between ladder rungs.
func (p *Plan) SetExitThreshold(thr float64) {
	if !(thr > 0 && thr <= 1) {
		thr = math.Inf(1)
	}
	p.exitThrBits.Store(math.Float64bits(thr))
}

// ExitThreshold returns the live threshold, or +Inf when early exit is
// disabled (or unsupported by the graph).
func (p *Plan) ExitThreshold() float64 {
	if p.exitAt < 0 {
		return math.Inf(1)
	}
	return math.Float64frombits(p.exitThrBits.Load())
}

// Kernels names the compute kernels this plan's ops dispatch to on this
// process — the string /ei_metrics surfaces per model. The base GEMM
// kernel ("packed-fma", "qgemm-avx2", or "scalar" under
// OPENEI_FORCE_SCALAR / missing CPU features) is joined with
// "direct-conv" when any convolution qualifies for the im2col-free
// stencil path.
func (p *Plan) Kernels() string {
	base := tensor.KernelGEMM()
	if p.quantized() {
		base = tensor.KernelQGEMM()
	}
	direct := false
	for i := range p.ops {
		if p.ops[i].kind == opConv && tensor.DirectConv3x3(p.ops[i].conv) {
			direct = true
			break
		}
	}
	if direct {
		return base + "+direct-conv"
	}
	return base
}

// quantized reports whether the plan's backend runs the quantized
// execution path (int8 kernels — which the int4 storage format also
// rides) and therefore carries calibration state.
func (p *Plan) quantized() bool { return p.backend == Int8 || p.backend == Int4 }

// freezeCalibration ends an int8 plan's calibration life: activation
// scales become frozen constants and the quantized ops' float reference
// weights (kept only for the calibration passes) are released, so the
// deployed residency matches WeightBytes' ≈¼ claim.
func (p *Plan) freezeCalibration() {
	if !p.quantized() || p.released {
		return
	}
	for i := range p.ops {
		o := &p.ops[i]
		if o.int8 {
			o.w, o.wt = nil, nil
		}
	}
	p.released = true
}

// Name returns the compiled model's name.
func (p *Plan) Name() string { return p.name }

// Backend returns the plan's backend.
func (p *Plan) Backend() Backend { return p.backend }

// InputShape returns the per-sample input shape.
func (p *Plan) InputShape() []int { return append([]int(nil), p.inputShape...) }

// Classes returns the flattened output width (class count).
func (p *Plan) Classes() int { return p.classes }

// Calibrated reports whether an int8 plan's activation scales are set
// (float32 plans are always calibrated).
func (p *Plan) Calibrated() bool { return !p.quantized() || p.calibrated }

// CalibrationFrozen reports whether an int8 plan's scales are frozen and
// its calibration-only float weights released (always true for float32
// plans, which never hold calibration state).
func (p *Plan) CalibrationFrozen() bool { return !p.quantized() || p.released }

// FLOPs returns the per-sample forward cost of the source model at the
// given batch size (the cost-model view; graph optimization does not
// change the multiply-add count).
func (p *Plan) FLOPs(batch int) int64 { return p.flops * int64(batch) }

// ActivationBytes returns the source model's per-sample peak activation
// estimate.
func (p *Plan) ActivationBytes() int64 { return p.actBytes }

// WeightBytes returns the deployed weight footprint: int8 artifacts for
// quantized ops, float32 for the rest — the honest per-representation
// number behind the serving tier's memory accounting. During an int8
// plan's calibration window the float reference weights are transiently
// also resident; they are released when the scales freeze
// (freezeCalibration), after which this is the true residency.
func (p *Plan) WeightBytes() int64 {
	var n int64
	for i := range p.ops {
		o := &p.ops[i]
		switch o.kind {
		case opDense, opConv, opDwConv:
			if o.q4 != nil {
				n += int64(o.q4.SizeBytes())
			} else if o.int8 {
				n += int64(o.qw.SizeBytes())
			} else {
				n += 4 * int64(o.w.Len())
			}
			if o.b != nil {
				n += 4 * int64(o.b.Len())
			}
		case opBatchNorm:
			n += 4 * int64(len(o.gamma)+len(o.beta)+len(o.mean)+len(o.std))
		case opRNN:
			r := o.rnn
			n += 4 * int64(r.wt.Len()+r.ut.Len()+len(r.bz)+len(r.bh)+2)
		}
	}
	return n
}

// OpInfo is the inspectable form of one compiled op, for tests and
// diagnostics. FusedRequant marks an int8 op that writes its output
// directly as the next quantized op's int8 input (fused requantization
// epilogue).
type OpInfo struct {
	Kind         string
	FusedReLU    bool
	Int8         bool
	Int4         bool
	FusedRequant bool
}

// Ops returns the compiled op list.
func (p *Plan) Ops() []OpInfo {
	out := make([]OpInfo, len(p.ops))
	for i := range p.ops {
		out[i] = OpInfo{
			Kind:         p.ops[i].kind.String(),
			FusedReLU:    p.ops[i].fusedReLU,
			Int8:         p.ops[i].int8,
			Int4:         p.ops[i].q4 != nil,
			FusedRequant: p.ops[i].emitQ,
		}
	}
	return out
}

func prod(xs []int) int {
	n := 1
	for _, x := range xs {
		n *= x
	}
	return n
}
