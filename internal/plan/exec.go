package plan

import (
	"fmt"

	"openei/internal/parallel"
	"openei/internal/tensor"
)

// Execute runs one batched input through the plan and returns the output
// logits. The result lives in the plan's arena and is valid only until
// the next Execute/InferBatch/Calibrate call. A lazily calibrated int8
// plan widens its activation ranges over this batch first (and over the
// first selfCalibrationBatches batches in total before the scales
// freeze), then executes on the int8 kernels — so every answer the plan
// ever returns comes from its advertised backend.
func (p *Plan) Execute(x *tensor.Tensor) (*tensor.Tensor, error) {
	if p.quantized() && !p.released {
		if err := p.Calibrate(x); err != nil {
			return nil, err
		}
		p.noteCalibration()
	}
	p.arena.Reset()
	return p.run(x, false)
}

// Calibrate runs the float32 reference pass over the batched input,
// recording each quantized op's input range; activation scales are set
// from the accumulated maxima. May be called more than once (ranges only
// widen) until the calibration freezes — after that the float reference
// weights are gone and Calibrate fails with ErrCalibrationFrozen.
func (p *Plan) Calibrate(x *tensor.Tensor) error {
	if !p.quantized() {
		return nil
	}
	if p.released {
		return ErrCalibrationFrozen
	}
	p.arena.Reset()
	return p.calibrateFrom(x)
}

// calibrateFrom is Calibrate without the arena reset, so InferBatch can
// calibrate on a batch it has already staged in the arena (the float
// pass allocates past the staged input; nothing is clobbered).
func (p *Plan) calibrateFrom(x *tensor.Tensor) error {
	if _, err := p.run(x, true); err != nil {
		return err
	}
	if p.exitAt >= 0 {
		// Early-exit-capable graphs feed the head every step's hidden
		// state, not just h_T — sweep them all so the scales cover what
		// the exit path will actually quantize.
		if err := p.calibrateRecurrent(x); err != nil {
			return err
		}
	}
	for i := range p.ops {
		o := &p.ops[i]
		if !o.int8 {
			continue
		}
		o.inScale = o.calibMax / 127
		if o.inScale == 0 {
			o.inScale = 1
		}
	}
	p.calibrated = true
	return nil
}

// noteCalibration counts one lazy calibration pass and freezes the
// scales once the widening window is spent.
func (p *Plan) noteCalibration() {
	p.calibRuns++
	if p.calibRuns >= selfCalibrationBatches {
		p.freezeCalibration()
	}
}

// run executes the op list. calibrating forces the float32 reference
// kernels and records int8-op input ranges. Between fused quantized ops
// the activation travels as a raw int8 buffer (qx) rather than a float
// tensor; view ops on that buffer are pure shape bookkeeping.
func (p *Plan) run(x *tensor.Tensor, calibrating bool) (*tensor.Tensor, error) {
	if x.Dims() != len(p.inputShape)+1 {
		return nil, fmt.Errorf("%w: %s wants batched %v input, got %v", ErrShape, p.name, p.inputShape, x.Shape())
	}
	batch := x.Dim(0)
	var qx []int8
	qslot := 0
	var err error
	for i := range p.ops {
		o := &p.ops[i]
		if calibrating && o.int8 {
			if m := x.AbsMax(); m > o.calibMax {
				o.calibMax = m
			}
		}
		switch {
		case o.int8 && !calibrating:
			x, qx, err = p.runInt8(o, x, qx, &qslot, batch)
		case qx != nil && o.kind == opView:
			// The int8 activation is already flat; its consumer carries
			// the compiled shape.
		case qx != nil && o.kind == opMaxPool:
			qx = p.runQPool(o, qx, &qslot, batch)
		default:
			x, err = p.runFloat(o, x)
		}
		if err != nil {
			return nil, fmt.Errorf("plan: %s op %d (%s): %w", p.name, i, o.kind, err)
		}
	}
	return x, nil
}

// runFloat executes one op on the float32 kernels — the exact arithmetic
// of the arena layer walk, with the fused ReLU applied as an in-place
// epilogue clamp (same values, no extra buffer).
func (p *Plan) runFloat(o *op, x *tensor.Tensor) (*tensor.Tensor, error) {
	a := p.arena
	batch := x.Dim(0)
	var y *tensor.Tensor
	switch o.kind {
	case opDense:
		y = a.NewUninit(batch, o.wt.Dim(1))
		if err := tensor.MatMulInto(y, x, o.wt); err != nil {
			return nil, err
		}
		if err := tensor.AddBiasRows(y, o.b); err != nil {
			return nil, err
		}
	case opConv:
		s := o.conv
		y = a.NewUninit(batch, s.OutC, s.OutH(), s.OutW())
		if err := tensor.Conv2DInto(y, x, o.w, o.b, s); err != nil {
			return nil, err
		}
	case opDwConv:
		s := o.conv
		y = a.NewUninit(batch, s.InC, s.OutH(), s.OutW())
		if err := tensor.DepthwiseConv2DInto(y, x, o.w, o.b, s); err != nil {
			return nil, err
		}
	case opMaxPool:
		s := o.pool
		y = a.NewUninit(batch, s.C, s.OutH(), s.OutW())
		if err := tensor.MaxPool2DInto(y, x, s, nil); err != nil {
			return nil, err
		}
	case opGAP:
		y = a.NewUninit(batch, x.Dim(1))
		if err := tensor.GlobalAvgPool2DInto(y, x); err != nil {
			return nil, err
		}
	case opBatchNorm:
		var err error
		if y, err = p.runBatchNorm(o, x); err != nil {
			return nil, err
		}
	case opReLU:
		y = a.NewUninitLike(x)
		reluInto(y.Data(), x.Data())
		return y, nil
	case opView:
		return a.View(x, batch, prod(o.outShape))
	case opRNN:
		// Full-window recurrent step loop (ReLU never fuses into it).
		return p.runRNNFull(o.rnn, x, nil)
	default:
		return nil, fmt.Errorf("unknown op kind %v", o.kind)
	}
	if o.fusedReLU {
		reluInPlace(y.Data())
	}
	return y, nil
}

// runBatchNorm normalizes against the compiled running statistics —
// the same per-element expression as the layer walk, so float results
// stay bitwise identical.
func (p *Plan) runBatchNorm(o *op, x *tensor.Tensor) (*tensor.Tensor, error) {
	feats := len(o.gamma)
	var batch, spatial int
	switch x.Dims() {
	case 2:
		batch, spatial = x.Dim(0), 1
	case 4:
		batch, spatial = x.Dim(0), x.Dim(2)*x.Dim(3)
	default:
		return nil, fmt.Errorf("%w: batchnorm needs 2-D or 4-D input, got %v", ErrShape, x.Shape())
	}
	if x.Len() != batch*feats*spatial {
		return nil, fmt.Errorf("%w: batchnorm(%d) input %v", ErrShape, feats, x.Shape())
	}
	y := p.arena.NewUninitLike(x)
	src, dst := x.Data(), y.Data()
	for f := 0; f < feats; f++ {
		mean, std := o.mean[f], o.std[f]
		g, be := o.gamma[f], o.beta[f]
		for n := 0; n < batch; n++ {
			base := (n*feats + f) * spatial
			for s := 0; s < spatial; s++ {
				dst[base+s] = g*((src[base+s]-mean)/std) + be
			}
		}
	}
	return y, nil
}

// runInt8 executes a quantized op. The input arrives either as the float
// tensor x (requantized here with the op's calibrated scale) or as the
// int8 buffer qx a fused producer emitted; the output likewise is a
// float tensor, or — when o.emitQ — an int8 buffer already quantized
// with the consumer's scale, written by the kernel epilogue in the same
// pass as the rescale/bias/clamp. Fused requantization applies exactly
// QuantizeCalibratedInto's arithmetic to exactly the float the unfused
// epilogue produces, so fused and unfused execution are bitwise
// identical.
func (p *Plan) runInt8(o *op, x *tensor.Tensor, qx []int8, qslot *int, batch int) (*tensor.Tensor, []int8, error) {
	a := p.arena
	var qout []int8
	var outScale float32
	if o.emitQ {
		outScale = p.ops[o.qNext].inScale
		n := batch * prod(o.outShape)
		if cap(p.qact[*qslot]) < n {
			p.qact[*qslot] = make([]int8, n)
		}
		qout = p.qact[*qslot][:n]
		*qslot ^= 1
	}
	switch o.kind {
	case opConv:
		s := o.conv
		var xd []float32
		if qx == nil {
			if x.Dims() != 4 || x.Dim(1) != s.InC || x.Dim(2) != s.InH || x.Dim(3) != s.InW {
				return nil, nil, fmt.Errorf("%w: QConv2D input %v does not match spec %+v", ErrShape, x.Shape(), s)
			}
			xd = x.Data()
		}
		var bias []float32
		if o.b != nil {
			bias = o.b.Data()
		}
		if qout != nil {
			if o.q4 != nil {
				tensor.QConv2DExec4(nil, qout, xd, qx, o.q4, bias, s, batch, o.inScale, outScale, o.fusedReLU)
			} else {
				tensor.QConv2DExec(nil, qout, xd, qx, o.qw, bias, s, batch, o.inScale, outScale, o.fusedReLU)
			}
			return nil, qout, nil
		}
		y := a.NewUninit(batch, s.OutC, s.OutH(), s.OutW())
		if o.q4 != nil {
			tensor.QConv2DExec4(y.Data(), nil, xd, qx, o.q4, bias, s, batch, o.inScale, 0, o.fusedReLU)
		} else {
			tensor.QConv2DExec(y.Data(), nil, xd, qx, o.qw, bias, s, batch, o.inScale, 0, o.fusedReLU)
		}
		return y, nil, nil
	case opDense:
		in, out := o.denseIn, o.denseOut
		if qx == nil {
			if x.Dims() != 2 || x.Dim(1) != in {
				return nil, nil, fmt.Errorf("%w: dense(%d→%d) got input %v", ErrShape, in, out, x.Shape())
			}
			if cap(p.qin) < batch*in {
				p.qin = make([]int8, batch*in)
			}
			qx = p.qin[:batch*in]
			tensor.QuantizeCalibratedInto(qx, x.Data(), o.inScale)
		}
		if cap(p.qacc) < batch*out {
			p.qacc = make([]int32, batch*out)
		}
		qw, scales := p.denseWeights(o, in, out)
		if qout != nil {
			qDenseRows(nil, qout, qx, p.qacc[:batch*out], o, qw, scales, batch, in, out, 1/outScale)
			return nil, qout, nil
		}
		y := a.NewUninit(batch, out)
		qDenseRows(y.Data(), nil, qx, p.qacc[:batch*out], o, qw, scales, batch, in, out, 0)
		return y, nil, nil
	default:
		return nil, nil, fmt.Errorf("int8 kernel for op %v does not exist", o.kind)
	}
}

// runQPool pools an in-flight int8 activation without leaving the fused
// chain. Quantization (round, rescale, clamp) and the fused ReLU are
// monotone nondecreasing maps, and max commutes with any monotone map,
// so the result is bitwise identical to the unfused float pool followed
// by the consumer's quantize. Output goes to the idle ping-pong slot.
func (p *Plan) runQPool(o *op, qx []int8, qslot *int, batch int) []int8 {
	s := o.pool
	n := batch * s.C * s.OutH() * s.OutW()
	if cap(p.qact[*qslot]) < n {
		p.qact[*qslot] = make([]int8, n)
	}
	dst := p.qact[*qslot][:n]
	*qslot ^= 1
	tensor.QMaxPool2DInto(dst, qx, s, batch, o.fusedReLU)
	return dst
}

// denseWeights resolves a quantized dense op's int8 weight bytes and
// per-output-channel effective scales (inScale·rowScale). The int8
// backend streams the resident artifact with its uniform scale; int4
// unpacks the nibbles into the plan's q4w scratch — grown once, so the
// serving steady state stays allocation-free — and applies the
// per-row scales the packed format carries.
func (p *Plan) denseWeights(o *op, in, out int) ([]int8, []float32) {
	if cap(p.qscales) < out {
		p.qscales = make([]float32, out)
	}
	scales := p.qscales[:out]
	if o.q4 == nil {
		u := o.inScale * o.qw.Scale
		for j := range scales {
			scales[j] = u
		}
		return o.qw.Data, scales
	}
	if cap(p.q4w) < in*out {
		p.q4w = make([]int8, in*out)
	}
	qw := p.q4w[:in*out]
	o.q4.UnpackInto(qw)
	for j := range scales {
		scales[j] = o.inScale * o.q4.Scales[j]
	}
	return qw, scales
}

// qDenseRows is the int8 dense kernel: each sample row reduces against
// the (out, in) weight artifact — already the transposed-B layout the
// dot-form QGemmRowT streams — then the epilogue rescales per output
// channel, adds bias, and applies the fused clamp, into float dst or
// (fused chain) int8 qdst requantized with invOut. Batch rows shard
// across the parallel runtime with disjoint accumulator rows, so
// results are exact regardless of pool width.
func qDenseRows(dst []float32, qdst []int8, qx []int8, qacc []int32, o *op, qw []int8, scales []float32, batch, in, out int, invOut float32) {
	// The parallel closure is built only on the sharded branch — serial
	// execution must stay allocation-free for the serving steady state.
	if batch > 1 && parallel.Worth(batch*in*out) {
		parallel.Do(batch, parallel.GrainItems(in*out), func(lo, hi int) {
			qDenseRowsRange(dst, qdst, qx, qacc, o, qw, scales, in, out, invOut, lo, hi)
		})
		return
	}
	qDenseRowsRange(dst, qdst, qx, qacc, o, qw, scales, in, out, invOut, 0, batch)
}

func qDenseRowsRange(dst []float32, qdst []int8, qx []int8, qacc []int32, o *op, qw []int8, scales []float32, in, out int, invOut float32, lo, hi int) {
	bias := o.b.Data()
	relu := o.fusedReLU
	for i := lo; i < hi; i++ {
		acc := qacc[i*out : (i+1)*out]
		tensor.QGemmRowT(acc, qx[i*in:(i+1)*in], qw, in, out)
		if qdst != nil {
			// Fused requant epilogue: the same float each unfused step
			// would write, then QuantizeCalibratedInto's exact rounding.
			qi := qdst[i*out : (i+1)*out]
			for j, v := range acc {
				f := float32(v)*scales[j] + bias[j]
				if relu && f < 0 {
					f = 0
				}
				qi[j] = tensor.QRound8(f * invOut)
			}
			continue
		}
		di := dst[i*out : (i+1)*out]
		for j, v := range acc {
			f := float32(v)*scales[j] + bias[j]
			if relu && f < 0 {
				f = 0
			}
			di[j] = f
		}
	}
}

// InferBatch stacks same-shaped single-sample inputs, executes the plan,
// and returns per-sample argmax classes with softmax confidences. The
// returned slices reuse the caller's buffers (pass the previous call's
// slices back in), and all activations live in the plan's arena: both are
// valid only until the plan's next call — the replica InferBatch contract.
// On an early-exit-capable plan with the threshold enabled, confident
// samples retire before the window ends (see InferBatchSteps for the
// per-sample step counts).
func (p *Plan) InferBatch(xs []*tensor.Tensor, cls []int, conf []float64) ([]int, []float64, error) {
	var err error
	cls, conf, p.stepsBuf, err = p.InferBatchSteps(xs, cls, conf, p.stepsBuf)
	return cls, conf, err
}

// reluInto writes max(0, src) into dst, sharding large activations. The
// parallel closure is built only on the sharded branch so tiny tensors
// keep the zero-allocation guarantee (see nn's arena ReLU).
func reluInto(dst, src []float32) {
	if parallel.Worth(len(src)) {
		parallel.Do(len(src), parallel.GrainWork(), func(lo, hi int) {
			reluElems(dst, src, lo, hi)
		})
		return
	}
	reluElems(dst, src, 0, len(src))
}

// reluInPlace clamps negatives in place — the fused epilogue.
func reluInPlace(d []float32) {
	if parallel.Worth(len(d)) {
		parallel.Do(len(d), parallel.GrainWork(), func(lo, hi int) {
			reluElems(d, d, lo, hi)
		})
		return
	}
	reluElems(d, d, 0, len(d))
}

func reluElems(dst, src []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		if v := src[i]; v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}
