package plan

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"openei/internal/compress"
	"openei/internal/dataset"
	"openei/internal/nn"
	"openei/internal/tensor"
	"openei/internal/zoo"
)

func randBatch(rng *rand.Rand, batch int, shape []int) *tensor.Tensor {
	full := append([]int{batch}, shape...)
	t := tensor.New(full...)
	d := t.Data()
	for i := range d {
		d[i] = rng.Float32()*2 - 1
	}
	return t
}

// The golden parity property (satellite): a compiled float32 plan is
// bitwise identical to the frozen arena layer walk, for every model in
// the zoo catalog, across random batch sizes and input sizes.
func TestFloat32PlanBitwiseMatchesForwardArena(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, e := range zoo.Catalog() {
		for _, size := range []int{12, 16} {
			m, err := zoo.Build(e.Name, size, 5, rand.New(rand.NewSource(9)))
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			frozen, err := m.Clone()
			if err != nil {
				t.Fatal(err)
			}
			frozen.FreezeInference()
			p, err := Compile(frozen, Options{Backend: Float32})
			if err != nil {
				t.Fatalf("%s: compile: %v", e.Name, err)
			}
			arena := tensor.NewArena(0)
			for _, batch := range []int{1, 3, 8, 13} {
				x := randBatch(rng, batch, m.InputShape)
				arena.Reset()
				want, err := frozen.ForwardArena(x, arena)
				if err != nil {
					t.Fatalf("%s batch %d: arena walk: %v", e.Name, batch, err)
				}
				got, err := p.Execute(x)
				if err != nil {
					t.Fatalf("%s batch %d: plan: %v", e.Name, batch, err)
				}
				if got.Len() != want.Len() {
					t.Fatalf("%s batch %d: plan emitted %v, walk %v", e.Name, batch, got.Shape(), want.Shape())
				}
				// want lives in the test's arena, got in the plan's; the
				// two passes share no storage.
				for i := range want.Data() {
					if want.Data()[i] != got.Data()[i] {
						t.Fatalf("%s size %d batch %d: elem %d differs: plan %v vs walk %v",
							e.Name, size, batch, i, got.Data()[i], want.Data()[i])
					}
				}
			}
		}
	}
}

// Fusion rules: dropout disappears, ReLUs fuse into their producers,
// flatten lowers to a view — the compiled graph has no standalone
// activation or identity ops left for these architectures.
func TestCompiledGraphFusesActivationsAndDropsIdentities(t *testing.T) {
	m, err := zoo.Build("alexnet-m", 16, 5, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fused := 0
	for _, o := range p.Ops() {
		switch o.Kind {
		case "relu":
			t.Errorf("standalone relu survived fusion: %+v", p.Ops())
		case "dropout":
			t.Errorf("dropout survived inference lowering: %+v", p.Ops())
		}
		if o.FusedReLU {
			fused++
		}
	}
	// alexnet-m has five relus, every one after a conv or dense layer.
	if fused != 5 {
		t.Errorf("fused %d relus, want 5: %+v", fused, p.Ops())
	}
	// 15 layers (5 of them relus, 1 dropout) compile to 9 ops.
	if len(p.Ops()) != 9 {
		t.Errorf("compiled to %d ops, want 9: %+v", len(p.Ops()), p.Ops())
	}
}

// bnModel is a conv→batchnorm→relu→flatten→dense stack with non-trivial
// running statistics, the architecture that exercises the fold.
func bnModel(t *testing.T) *nn.Model {
	t.Helper()
	s := tensor.Conv2DSpec{InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	m, err := nn.NewModel("bn-net", []int{1, 8, 8}, []nn.LayerSpec{
		{Type: "conv2d", Conv: &s},
		{Type: "batchnorm", Features: 4},
		{Type: "relu"},
		{Type: "flatten"},
		{Type: "dense", In: 4 * 8 * 8, Out: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	m.InitParams(rng)
	bn := m.Layers[1].(*nn.BatchNorm)
	for f := 0; f < 4; f++ {
		bn.RunMean.Data()[f] = rng.Float32()*0.4 - 0.2
		bn.RunVar.Data()[f] = 0.5 + rng.Float32()
		bn.Gamma.Data()[f] = 0.8 + rng.Float32()*0.4
		bn.Beta.Data()[f] = rng.Float32()*0.2 - 0.1
	}
	return m
}

// BatchNorm folding: the batchnorm op disappears into the preceding conv,
// and the folded plan matches the unfused reference within float rounding
// (folding reassociates the per-channel scale, so exact bit equality is
// not expected — closeness is).
func TestBatchNormFoldsIntoConv(t *testing.T) {
	m := bnModel(t)
	p, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{}
	for _, o := range p.Ops() {
		kinds = append(kinds, o.Kind)
	}
	if len(kinds) != 3 || kinds[0] != "conv2d" || kinds[1] != "view" || kinds[2] != "dense" {
		t.Fatalf("folded graph = %v, want [conv2d view dense]", kinds)
	}
	if !p.Ops()[0].FusedReLU {
		t.Fatalf("relu did not fuse into the folded conv: %+v", p.Ops())
	}

	x := randBatch(rand.New(rand.NewSource(5)), 4, m.InputShape)
	want, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Execute(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data() {
		diff := math.Abs(float64(want.Data()[i] - got.Data()[i]))
		if diff > 1e-4 {
			t.Fatalf("elem %d: folded %v vs reference %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

// With fusion disabled the batchnorm stays a standalone op and the plan
// reproduces the layer walk exactly.
func TestNoFusionKeepsBatchNormBitwise(t *testing.T) {
	m := bnModel(t)
	p, err := Compile(m, Options{NoFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	sawBN := false
	for _, o := range p.Ops() {
		if o.Kind == "batchnorm" {
			sawBN = true
		}
	}
	if !sawBN {
		t.Fatalf("NoFusion plan lost its batchnorm: %+v", p.Ops())
	}
	frozen, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	frozen.FreezeInference()
	x := randBatch(rand.New(rand.NewSource(6)), 3, m.InputShape)
	arena := tensor.NewArena(0)
	want, err := frozen.ForwardArena(x, arena)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Execute(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data() {
		if want.Data()[i] != got.Data()[i] {
			t.Fatalf("elem %d: %v vs %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

// Recurrent stacks compile to first-class RNN step ops (no layer-walk
// fallback remains), and the [rnn, head…] shape is detected as
// early-exit-capable.
func TestCompileLowersRecurrentStacks(t *testing.T) {
	m, err := nn.NewModel("rnn", []int{24}, []nn.LayerSpec{
		{Type: "fastgrnn", RNN: &nn.RNNSpec{D: 6, H: 8, T: 4}},
		{Type: "dense", In: 8, Out: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, Options{})
	if err != nil {
		t.Fatalf("compile recurrent stack: %v", err)
	}
	ops := p.Ops()
	if len(ops) != 2 || ops[0].Kind != "fastgrnn" || ops[1].Kind != "dense" {
		t.Fatalf("ops = %+v, want [fastgrnn dense]", ops)
	}
	if !p.SupportsEarlyExit() {
		t.Fatal("[fastgrnn, dense] plan should be early-exit-capable")
	}
	if p.RNNSteps() != 4 {
		t.Fatalf("RNNSteps = %d, want 4", p.RNNSteps())
	}
	if !math.IsInf(p.ExitThreshold(), 1) {
		t.Fatalf("default threshold = %v, want +Inf (disabled)", p.ExitThreshold())
	}
	if p.WeightBytes() == 0 {
		t.Fatal("recurrent plan reports zero weight bytes")
	}
}

// Custom layer types outside the IR must still be rejected, not silently
// mis-lowered.
func TestCompileRejectsUnknownLayers(t *testing.T) {
	m := &nn.Model{Name: "custom", InputShape: []int{4}, Layers: []nn.Layer{opaqueLayer{}}}
	if _, err := Compile(m, Options{}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("compile = %v, want ErrUnsupported", err)
	}
}

// opaqueLayer is a Layer implementation the plan IR has never heard of.
type opaqueLayer struct{}

func (opaqueLayer) Kind() string                                             { return "opaque" }
func (opaqueLayer) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) { return x, nil }
func (opaqueLayer) Backward(g *tensor.Tensor) (*tensor.Tensor, error)        { return g, nil }
func (opaqueLayer) Params() []*tensor.Tensor                                 { return nil }
func (opaqueLayer) Grads() []*tensor.Tensor                                  { return nil }
func (opaqueLayer) FLOPs(int) int64                                          { return 0 }
func (opaqueLayer) OutShape(in []int) ([]int, error)                         { return in, nil }
func (opaqueLayer) Spec() nn.LayerSpec                                       { return nn.LayerSpec{Type: "opaque"} }

// Int8 plans: the quantized backend stays within quantization tolerance
// of the float plan on the same inputs, and its weight footprint is about
// a quarter of the float plan's.
func TestInt8PlanClosesToFloatAndShrinks(t *testing.T) {
	for _, name := range []string{"mlp", "lenet"} {
		m, err := zoo.Build(name, 16, 5, rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatal(err)
		}
		cal := randBatch(rand.New(rand.NewSource(22)), 16, m.InputShape)
		f32, err := Compile(m, Options{Backend: Float32})
		if err != nil {
			t.Fatal(err)
		}
		i8, err := Compile(m, Options{Backend: Int8, Calibration: cal})
		if err != nil {
			t.Fatal(err)
		}
		if !i8.Calibrated() {
			t.Fatalf("%s: compile-time calibration did not stick", name)
		}

		ratio := float64(i8.WeightBytes()) / float64(f32.WeightBytes())
		if ratio > 0.5 {
			t.Errorf("%s: int8 weight bytes ratio %.2f, want ≲ 0.25", name, ratio)
		}

		x := randBatch(rand.New(rand.NewSource(23)), 8, m.InputShape)
		want, err := f32.Execute(x)
		if err != nil {
			t.Fatal(err)
		}
		wantCopy := append([]float32(nil), want.Data()...)
		got, err := i8.Execute(x)
		if err != nil {
			t.Fatal(err)
		}
		var worst, scaleRef float64
		for i := range wantCopy {
			if d := math.Abs(float64(wantCopy[i])); d > scaleRef {
				scaleRef = d
			}
		}
		for i := range wantCopy {
			if d := math.Abs(float64(got.Data()[i] - wantCopy[i])); d > worst {
				worst = d
			}
		}
		// Logit-scale relative error bound: generous enough for stacked
		// per-layer quantization, tight enough to catch a broken kernel.
		if worst > 0.15*scaleRef+0.05 {
			t.Errorf("%s: worst int8 deviation %v (logit scale %v)", name, worst, scaleRef)
		}
	}
}

// An int8 plan with no compile-time calibration batch calibrates itself
// on the first served batch — and every served answer, including the
// first, comes from the int8 kernels.
func TestInt8PlanSelfCalibrates(t *testing.T) {
	m, err := zoo.Build("mlp", 12, 4, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, Options{Backend: Int8})
	if err != nil {
		t.Fatal(err)
	}
	if p.Calibrated() {
		t.Fatal("uncalibrated plan reports calibrated")
	}
	rng := rand.New(rand.NewSource(32))
	xs := make([]*tensor.Tensor, 4)
	for i := range xs {
		xs[i] = randBatch(rng, 1, m.InputShape).MustReshape(m.InputShape...)
	}
	cls, conf, err := p.InferBatch(xs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Calibrated() {
		t.Fatal("first batch did not calibrate the plan")
	}
	if len(cls) != 4 || len(conf) != 4 {
		t.Fatalf("got %d classes, %d confidences, want 4", len(cls), len(conf))
	}
	// Determinism after calibration: the same batch answers identically.
	cls2, conf2, err := p.InferBatch(xs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cls {
		if cls[i] != cls2[i] || conf[i] != conf2[i] {
			t.Fatalf("sample %d: (%d, %v) then (%d, %v)", i, cls[i], conf[i], cls2[i], conf2[i])
		}
	}
}

// Lazy calibration widens over the first served batches, then freezes
// and releases the calibration-only float weights — the plan's weight
// residency ends at the int8 artifact, and further explicit calibration
// is refused.
func TestInt8PlanCalibrationWindowFreezesAndReleases(t *testing.T) {
	m, err := zoo.Build("mlp", 12, 4, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, Options{Backend: Int8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(34))
	xs := []*tensor.Tensor{randBatch(rng, 1, m.InputShape).MustReshape(m.InputShape...)}
	for i := 0; i < selfCalibrationBatches; i++ {
		if p.CalibrationFrozen() {
			t.Fatalf("calibration froze after %d batches, want %d", i, selfCalibrationBatches)
		}
		if _, _, err := p.InferBatch(xs, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !p.CalibrationFrozen() {
		t.Fatal("calibration did not freeze after the widening window")
	}
	if err := p.Calibrate(xs[0].MustReshape(1, 12*12).MustReshape(1, 1, 12, 12)); !errors.Is(err, ErrCalibrationFrozen) {
		t.Fatalf("Calibrate on frozen plan = %v, want ErrCalibrationFrozen", err)
	}
	// Serving still works, and answers stay deterministic once frozen.
	if _, _, err := p.InferBatch(xs, nil, nil); err != nil {
		t.Fatal(err)
	}

	// A compile-time calibration batch freezes immediately.
	m2, err := zoo.Build("mlp", 12, 4, rand.New(rand.NewSource(35)))
	if err != nil {
		t.Fatal(err)
	}
	cal := randBatch(rng, 8, m2.InputShape)
	p2, err := Compile(m2, Options{Backend: Int8, Calibration: cal})
	if err != nil {
		t.Fatal(err)
	}
	if !p2.CalibrationFrozen() {
		t.Fatal("explicit calibration batch did not freeze the plan")
	}
}

// The accuracy satellite: on the procedural-shapes smoke set, a trained
// model's int8 plan stays within a small accuracy drop of its float plan.
func TestInt8PlanAccuracyDropBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	cfg := dataset.ShapesConfig{Samples: 600, Size: 16, Classes: 4, Noise: 0.25, Seed: 5}
	train, test, err := dataset.Shapes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := zoo.Build("lenet", cfg.Size, cfg.Classes, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Train(m, train, nn.TrainConfig{
		Epochs: 3, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rand.New(rand.NewSource(78)),
	}); err != nil {
		t.Fatal(err)
	}
	// Install the int8 artifacts the quantized load path would.
	qm, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compress.QuantizeInt8(qm); err != nil {
		t.Fatal(err)
	}

	accOf := func(p *Plan) float64 {
		logits, err := p.Execute(test.X)
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		classes := logits.Dim(1)
		for b := 0; b < logits.Dim(0); b++ {
			row := logits.Data()[b*classes : (b+1)*classes]
			arg := 0
			for j, v := range row {
				if v > row[arg] {
					arg = j
				}
			}
			if arg == test.Y[b] {
				correct++
			}
		}
		return float64(correct) / float64(len(test.Y))
	}

	f32, err := Compile(m, Options{Backend: Float32})
	if err != nil {
		t.Fatal(err)
	}
	i8, err := Compile(qm, Options{Backend: Int8, Calibration: train.X})
	if err != nil {
		t.Fatal(err)
	}
	accF, accQ := accOf(f32), accOf(i8)
	t.Logf("lenet shapes accuracy: float32 %.3f, int8 %.3f", accF, accQ)
	if accF < 0.6 {
		t.Fatalf("float smoke accuracy %.3f too low for the bound to mean anything", accF)
	}
	if accQ < accF-0.05 {
		t.Errorf("int8 accuracy drop too large: float %.3f, int8 %.3f", accF, accQ)
	}
}

// WeightBytes reports the per-representation footprint the tier ladder
// advertises: a conv model's int8 plan is about a quarter of its float
// plan.
func TestPlanWeightBytesQuarterForInt8(t *testing.T) {
	m, err := zoo.Build("vgg-m", 16, 5, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	f32, err := Compile(m, Options{Backend: Float32})
	if err != nil {
		t.Fatal(err)
	}
	i8, err := Compile(m, Options{Backend: Int8}) // weights quantize at compile
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(i8.WeightBytes()) / float64(f32.WeightBytes())
	if ratio < 0.2 || ratio > 0.35 {
		t.Errorf("int8/float32 weight bytes = %.3f, want ≈ 0.25 (biases stay float)", ratio)
	}
}

// TestFusedInt8ChainBitwiseMatchesUnfused pins the fusion guarantee: a
// calibrated int8 plan executed with its fused requant epilogues and the
// int8 max-pool passthrough produces bit-identical logits to the same
// plan with every chain link severed — each op dequantizing to float32
// and its consumer requantizing, the pools running on float. Fusion may
// only move where the quantization happens, never change its value.
func TestFusedInt8ChainBitwiseMatchesUnfused(t *testing.T) {
	for _, name := range []string{"lenet", "alexnet-m", "vgg-m"} {
		m, err := zoo.Build(name, 16, 5, rand.New(rand.NewSource(77)))
		if err != nil {
			t.Fatal(err)
		}
		cal := randBatch(rand.New(rand.NewSource(78)), 8, m.InputShape)
		p, err := Compile(m, Options{Backend: Int8, Calibration: cal})
		if err != nil {
			t.Fatal(err)
		}
		x := randBatch(rand.New(rand.NewSource(79)), 4, m.InputShape)
		fused, err := p.Execute(x)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]float32(nil), fused.Data()...)

		links := 0
		for i := range p.ops {
			if p.ops[i].emitQ {
				links++
				p.ops[i].emitQ = false
			}
		}
		if links == 0 {
			t.Fatalf("%s: plan compiled no fused quant links", name)
		}
		unfused, err := p.Execute(x)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range unfused.Data() {
			if v != want[i] {
				t.Fatalf("%s: logit %d: fused %v vs unfused %v — fusion must be bitwise invisible",
					name, i, want[i], v)
			}
		}
	}
}

// TestInt4PlanTracksInt8AcrossZoo is the golden equivalence sweep for
// the nibble-packed backend: for every catalog model, an int4 plan and
// an int8 plan calibrated on the same batch must produce logits within
// quantization tolerance of the float32 reference — int4's per-row
// scales spend a 15-value grid per output channel, so its band is wider
// than int8's but still bounded — and must agree with int8 on most
// argmax predictions.
func TestInt4PlanTracksInt8AcrossZoo(t *testing.T) {
	for _, e := range zoo.Catalog() {
		m, err := zoo.Build(e.Name, 16, 5, rand.New(rand.NewSource(51)))
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		cal := randBatch(rand.New(rand.NewSource(52)), 16, m.InputShape)
		f32, err := Compile(m, Options{Backend: Float32})
		if err != nil {
			t.Fatalf("%s: float compile: %v", e.Name, err)
		}
		i8, err := Compile(m, Options{Backend: Int8, Calibration: cal})
		if err != nil {
			t.Fatalf("%s: int8 compile: %v", e.Name, err)
		}
		i4, err := Compile(m, Options{Backend: Int4, Calibration: cal})
		if err != nil {
			t.Fatalf("%s: int4 compile: %v", e.Name, err)
		}
		if !i4.Calibrated() || !i4.CalibrationFrozen() {
			t.Fatalf("%s: int4 compile-time calibration did not stick/freeze", e.Name)
		}

		x := randBatch(rand.New(rand.NewSource(53)), 8, m.InputShape)
		want, err := f32.Execute(x)
		if err != nil {
			t.Fatal(err)
		}
		wantCopy := append([]float32(nil), want.Data()...)
		got8, err := i8.Execute(x)
		if err != nil {
			t.Fatalf("%s: int8 execute: %v", e.Name, err)
		}
		got8Copy := append([]float32(nil), got8.Data()...)
		got4, err := i4.Execute(x)
		if err != nil {
			t.Fatalf("%s: int4 execute: %v", e.Name, err)
		}
		var scaleRef, worst4, worst84 float64
		for i := range wantCopy {
			if d := math.Abs(float64(wantCopy[i])); d > scaleRef {
				scaleRef = d
			}
		}
		for i := range wantCopy {
			if d := math.Abs(float64(got4.Data()[i] - wantCopy[i])); d > worst4 {
				worst4 = d
			}
			if d := math.Abs(float64(got4.Data()[i] - got8Copy[i])); d > worst84 {
				worst84 = d
			}
		}
		// int4's grid is 8× coarser per weight than int8's; per-row
		// scales claw most of that back. The band below is wide enough
		// for stacked per-layer error on every catalog architecture and
		// narrow enough that a sign flip, nibble-order bug, or scale
		// mix-up fails immediately.
		// vs-float absorbs int8's own calibration deviation on top of
		// the nibble grid; vs-int8 isolates just what int4 adds.
		if worst4 > 0.5*scaleRef+0.1 {
			t.Errorf("%s: worst int4-vs-float deviation %v (logit scale %v)", e.Name, worst4, scaleRef)
		}
		if worst84 > 0.35*scaleRef+0.1 {
			t.Errorf("%s: worst int4-vs-int8 deviation %v (logit scale %v)", e.Name, worst84, scaleRef)
		}
		t.Logf("%s: logit scale %.3f, int4 worst dev %.4f, int4-vs-int8 %.4f", e.Name, scaleRef, worst4, worst84)
	}
}

// TestPlanWeightBytesEighthForInt4 pins the storage claim: two weights
// per byte plus per-row scales lands near ⅛ of the float bytes on a
// conv-heavy model (biases and norm parameters stay float).
func TestPlanWeightBytesEighthForInt4(t *testing.T) {
	for _, name := range []string{"vgg-m", "alexnet-m"} {
		m, err := zoo.Build(name, 16, 5, rand.New(rand.NewSource(41)))
		if err != nil {
			t.Fatal(err)
		}
		f32, err := Compile(m, Options{Backend: Float32})
		if err != nil {
			t.Fatal(err)
		}
		i4, err := Compile(m, Options{Backend: Int4})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(i4.WeightBytes()) / float64(f32.WeightBytes())
		if ratio < 0.1 || ratio > 0.2 {
			t.Errorf("%s: int4/float32 weight bytes = %.3f, want ≈ 0.125", name, ratio)
		}
	}
}

// TestInt4PlanSelfCalibratesAndFreezes: the int4 backend rides the int8
// calibration life cycle — lazy self-calibration on early batches, then
// the scales freeze, the float reference weights release, and Calibrate
// reports ErrCalibrationFrozen.
func TestInt4PlanSelfCalibratesAndFreezes(t *testing.T) {
	m, err := zoo.Build("mlp", 12, 4, rand.New(rand.NewSource(61)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, Options{Backend: Int4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Calibrated() {
		t.Fatal("uncalibrated int4 plan claims calibration")
	}
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < selfCalibrationBatches; i++ {
		if _, err := p.Execute(randBatch(rng, 4, m.InputShape)); err != nil {
			t.Fatal(err)
		}
	}
	if !p.CalibrationFrozen() {
		t.Fatalf("int4 plan not frozen after %d batches", selfCalibrationBatches)
	}
	if err := p.Calibrate(randBatch(rng, 4, m.InputShape)); !errors.Is(err, ErrCalibrationFrozen) {
		t.Fatalf("post-freeze Calibrate error = %v, want ErrCalibrationFrozen", err)
	}
	if _, err := p.Execute(randBatch(rng, 4, m.InputShape)); err != nil {
		t.Fatal(err)
	}
}
