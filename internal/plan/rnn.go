package plan

import (
	"fmt"

	"openei/internal/nn"
	"openei/internal/tensor"
)

// This file is the recurrent half of the executor: the compiled FastGRNN
// step loop (bitwise identical to the layer walk) and the early-exit
// epilogue that retires confident samples mid-batch, repacking the live
// rows so every later GEMM shrinks with the surviving set (EMI-RNN [42],
// §IV.A.2 of the paper).

// rnnCell applies one FastGRNN step elementwise:
//
//	z = σ(pre+b_z), h̃ = tanh(pre+b_h), h' = (ζ(1−z)+ν)·h̃ + z·h
//
// in the exact expression order of FastGRNN.Forward, so compiled results
// stay bitwise identical to the reference layer.
func rnnCell(dst, wx, uh, hPrev []float32, r *rnnStep) {
	for i := range dst {
		pre := wx[i] + uh[i]
		zi := nn.Sigmoid32(pre + r.bz[i%r.h])
		ci := nn.Tanh32(pre + r.bh[i%r.h])
		dst[i] = (r.zeta*(1-zi)+r.nu)*ci + zi*hPrev[i]
	}
}

// runRNNFull consumes the whole window on the full batch — the compiled
// form of FastGRNN.Forward. visit, when non-nil, observes every step's
// hidden state (the int8 calibration sweep runs the head over each of
// them, since early exit can feed the head any h_t).
func (p *Plan) runRNNFull(r *rnnStep, x *tensor.Tensor, visit func(h *tensor.Tensor) error) (*tensor.Tensor, error) {
	if x.Dims() != 2 || x.Dim(1) != r.t*r.d {
		return nil, fmt.Errorf("%w: fastgrnn (T=%d,D=%d) input %v", ErrShape, r.t, r.d, x.Shape())
	}
	batch := x.Dim(0)
	a := p.arena
	h := a.New(batch, r.h)
	src := x.Data()
	td := r.t * r.d
	for t := 0; t < r.t; t++ {
		xt := a.NewUninit(batch, r.d)
		for b := 0; b < batch; b++ {
			copy(xt.Data()[b*r.d:(b+1)*r.d], src[b*td+t*r.d:b*td+(t+1)*r.d])
		}
		wx := a.NewUninit(batch, r.h)
		if err := tensor.MatMulInto(wx, xt, r.wt); err != nil {
			return nil, err
		}
		uh := a.NewUninit(batch, r.h)
		if err := tensor.MatMulInto(uh, h, r.ut); err != nil {
			return nil, err
		}
		hn := a.NewUninit(batch, r.h)
		rnnCell(hn.Data(), wx.Data(), uh.Data(), h.Data(), r)
		h = hn
		if visit != nil {
			if err := visit(h); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}

// runHead executes the classification head (the ops after the RNN) on a
// hidden state — run's dispatch restricted to the epilogue, so it can be
// re-entered once per step during early exit and during the per-step
// calibration sweep.
func (p *Plan) runHead(x *tensor.Tensor, calibrating bool) (*tensor.Tensor, error) {
	batch := x.Dim(0)
	var qx []int8
	qslot := 0
	var err error
	for i := p.exitAt + 1; i < len(p.ops); i++ {
		o := &p.ops[i]
		if calibrating && o.int8 {
			if m := x.AbsMax(); m > o.calibMax {
				o.calibMax = m
			}
		}
		switch {
		case o.int8 && !calibrating:
			x, qx, err = p.runInt8(o, x, qx, &qslot, batch)
		case qx != nil && o.kind == opView:
			// int8 activation in flight; views are shape bookkeeping.
		case qx != nil && o.kind == opMaxPool:
			qx = p.runQPool(o, qx, &qslot, batch)
		default:
			x, err = p.runFloat(o, x)
		}
		if err != nil {
			return nil, fmt.Errorf("plan: %s op %d (%s): %w", p.name, i, o.kind, err)
		}
	}
	return x, nil
}

// calibrateRecurrent widens the head ops' activation ranges over every
// step's hidden state. The standard calibration pass only sees h_T; with
// early exit enabled the head consumes h_t for any t, so the scales must
// cover them all or early steps would clip.
func (p *Plan) calibrateRecurrent(x *tensor.Tensor) error {
	var err error
	for i := 0; i < p.exitAt; i++ {
		if x, err = p.runFloat(&p.ops[i], x); err != nil {
			return fmt.Errorf("plan: %s op %d (%s): %w", p.name, i, p.ops[i].kind, err)
		}
	}
	_, err = p.runRNNFull(p.ops[p.exitAt].rnn, x, func(h *tensor.Tensor) error {
		_, herr := p.runHead(h, true)
		return herr
	})
	return err
}

// runEarlyExit is the confidence-threshold epilogue: after every RNN step
// the head classifies the live rows; a sample whose softmax confidence
// reaches thr retires at that step (recording class, confidence, and
// steps used at its original batch index), and the survivors are gathered
// into a smaller hidden-state tensor so the next step's GEMMs shrink.
// Per-sample results are bitwise identical to nn.RNNEarlyExit on a frozen
// model: every kernel in the loop (ikj GEMM, cell, head dense, softmax,
// argmax) is row-independent, so repacking cannot change a row's value.
func (p *Plan) runEarlyExit(x *tensor.Tensor, thr float64, cls []int, conf []float64, steps []int) error {
	var err error
	for i := 0; i < p.exitAt; i++ {
		if x, err = p.runFloat(&p.ops[i], x); err != nil {
			return fmt.Errorf("plan: %s op %d (%s): %w", p.name, i, p.ops[i].kind, err)
		}
	}
	r := p.ops[p.exitAt].rnn
	if x.Dims() != 2 || x.Dim(1) != r.t*r.d {
		return fmt.Errorf("%w: fastgrnn (T=%d,D=%d) input %v", ErrShape, r.t, r.d, x.Shape())
	}
	batch := x.Dim(0)
	if cap(p.liveIdx) < batch {
		p.liveIdx = make([]int, batch)
		p.liveRows = make([]int, batch)
	}
	// live maps current row → original batch index; rows is the per-step
	// survivor repack list (row indices within the current hidden state).
	live := p.liveIdx[:batch]
	rows := p.liveRows[:batch]
	for i := range live {
		live[i] = i
	}
	a := p.arena
	src := x.Data()
	td := r.t * r.d
	w := batch
	h := a.New(w, r.h)
	for t := 0; t < r.t && w > 0; t++ {
		xt := a.NewUninit(w, r.d)
		for li := 0; li < w; li++ {
			b := live[li]
			copy(xt.Data()[li*r.d:(li+1)*r.d], src[b*td+t*r.d:b*td+(t+1)*r.d])
		}
		wx := a.NewUninit(w, r.h)
		if err := tensor.MatMulInto(wx, xt, r.wt); err != nil {
			return err
		}
		uh := a.NewUninit(w, r.h)
		if err := tensor.MatMulInto(uh, h, r.ut); err != nil {
			return err
		}
		hn := a.NewUninit(w, r.h)
		rnnCell(hn.Data(), wx.Data(), uh.Data(), h.Data(), r)
		h = hn

		logits, err := p.runHead(h, false)
		if err != nil {
			return err
		}
		if logits.Dims() != 2 {
			return fmt.Errorf("%w: early-exit head output %v is not 2-D logits", ErrShape, logits.Shape())
		}
		probs := a.NewUninitLike(logits)
		if err := nn.SoftmaxInto(probs, logits); err != nil {
			return err
		}
		classes := probs.Dim(1)
		last := t == r.t-1
		keep := 0
		for li := 0; li < w; li++ {
			row := probs.Data()[li*classes : (li+1)*classes]
			arg := 0
			for j, v := range row {
				if v > row[arg] {
					arg = j
				}
			}
			c := float64(row[arg])
			if c >= thr || last {
				b := live[li]
				cls[b], conf[b], steps[b] = arg, c, t+1
			} else {
				live[keep] = live[li]
				rows[keep] = li
				keep++
			}
		}
		if keep < w && keep > 0 {
			// Mid-batch repack: gather the survivors' hidden rows so the
			// next step's GEMMs run at the shrunken width.
			if h, err = a.GatherRows(h, rows[:keep]); err != nil {
				return err
			}
		}
		w = keep
	}
	return nil
}

// InferBatchSteps is InferBatch plus the per-sample step count: steps[b]
// reports how many RNN steps sample b consumed (T when early exit is
// disabled or the sample never reached the threshold; 0 for plans without
// a recurrent stage). Like cls and conf, steps reuses the caller's buffer
// and is valid until the plan's next call.
func (p *Plan) InferBatchSteps(xs []*tensor.Tensor, cls []int, conf []float64, steps []int) ([]int, []float64, []int, error) {
	p.arena.Reset()
	x, err := p.arena.StackArena(xs)
	if err != nil {
		return nil, nil, nil, err
	}
	if p.quantized() && !p.released {
		if err := p.calibrateFrom(x); err != nil {
			return nil, nil, nil, err
		}
		p.noteCalibration()
	}
	batch := len(xs)
	if cap(cls) < batch {
		cls = make([]int, batch)
	}
	cls = cls[:batch]
	if cap(conf) < batch {
		conf = make([]float64, batch)
	}
	conf = conf[:batch]
	if cap(steps) < batch {
		steps = make([]int, batch)
	}
	steps = steps[:batch]

	if thr := p.ExitThreshold(); p.exitAt >= 0 && thr <= 1 {
		if err := p.runEarlyExit(x, thr, cls, conf, steps); err != nil {
			return nil, nil, nil, err
		}
		return cls, conf, steps, nil
	}

	logits, err := p.run(x, false)
	if err != nil {
		return nil, nil, nil, err
	}
	if logits.Dims() != 2 {
		return nil, nil, nil, fmt.Errorf("%w: plan output %v is not 2-D logits", ErrShape, logits.Shape())
	}
	probs := p.arena.NewUninitLike(logits)
	if err := nn.SoftmaxInto(probs, logits); err != nil {
		return nil, nil, nil, err
	}
	classes := probs.Dim(1)
	full := p.RNNSteps()
	for b := 0; b < batch; b++ {
		row := probs.Data()[b*classes : (b+1)*classes]
		arg := 0
		for j, v := range row {
			if v > row[arg] {
				arg = j
			}
		}
		cls[b] = arg
		conf[b] = float64(row[arg])
		steps[b] = full
	}
	return cls, conf, steps, nil
}
