package plan

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"openei/internal/tensor"
	"openei/internal/zoo"
)

// benchPlan compiles one zoo model for the backend, calibrated and warm.
func benchPlan(tb testing.TB, model string, size, batch int, backend Backend) (*Plan, *tensor.Tensor) {
	tb.Helper()
	m, err := zoo.Build(model, size, 8, rand.New(rand.NewSource(63)))
	if err != nil {
		tb.Fatal(err)
	}
	x := randBatch(rand.New(rand.NewSource(64)), batch, m.InputShape)
	p, err := Compile(m, Options{Backend: backend, Calibration: x})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := p.Execute(x); err != nil { // warm the arena and scratch
		tb.Fatal(err)
	}
	return p, x
}

// BenchmarkPlanExecute is the float32-vs-int8 backend comparison the CI
// bench-smoke leg tracks: the same compiled graphs, the same inputs, the
// two kernel sets.
func BenchmarkPlanExecute(b *testing.B) {
	for _, cfg := range []struct {
		model string
		size  int
		batch int
	}{
		{"mlp", 16, 8},
		{"lenet", 16, 8},
		{"alexnet-m", 32, 8},
		{"vgg-m", 16, 8},
	} {
		for _, backend := range []Backend{Float32, Int8} {
			b.Run(cfg.model+"/"+string(backend), func(b *testing.B) {
				p, x := benchPlan(b, cfg.model, cfg.size, cfg.batch, backend)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := p.Execute(x); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// medianExec measures the median wall time of n plan executions.
func medianExec(tb testing.TB, p *Plan, x *tensor.Tensor, n int) time.Duration {
	tb.Helper()
	times := make([]time.Duration, n)
	for i := range times {
		start := time.Now()
		if _, err := p.Execute(x); err != nil {
			tb.Fatal(err)
		}
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[n/2]
}

// The acceptance property: a zoo conv model compiled to the int8 backend
// runs measurably faster and smaller than its float32 plan — the tier
// ladder's latency/memory split is real, not a relabeling. Medians over
// interleaved runs keep the comparison robust to scheduler noise.
func TestInt8PlanFasterAndSmallerThanFloat32(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	if tensor.KernelQGEMM() == "scalar" {
		t.Skip("no AVX2 (or scalar override); the latency edge is a claim about the vectorized int8 path")
	}
	const model, size, batch = "alexnet-m", 32, 8
	f32, x := benchPlan(t, model, size, batch, Float32)
	i8, _ := benchPlan(t, model, size, batch, Int8)

	// Smaller: the int8 artifact is ≈¼ of the float weights.
	ratio := float64(i8.WeightBytes()) / float64(f32.WeightBytes())
	if ratio < 0.2 || ratio > 0.35 {
		t.Errorf("int8/float32 weight bytes = %.3f, want ≈ 0.25", ratio)
	}

	// Faster: interleave the two backends and compare medians.
	const rounds = 21
	for i := 0; i < 3; i++ { // extra warm-up beyond benchPlan's
		medianExec(t, f32, x, 1)
		medianExec(t, i8, x, 1)
	}
	fd := medianExec(t, f32, x, rounds)
	id := medianExec(t, i8, x, rounds)
	t.Logf("%s batch %d: float32 median %v, int8 median %v (%.2fx)",
		model, batch, fd, id, float64(fd)/float64(id))
	if id >= fd {
		t.Errorf("int8 plan (%v) not faster than float32 plan (%v)", id, fd)
	}
}
