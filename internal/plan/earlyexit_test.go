package plan

import (
	"math"
	"math/rand"
	"testing"

	"openei/internal/nn"
	"openei/internal/tensor"
)

// rnnModel builds a frozen [fastgrnn, head…] model with random weights.
// withReLU inserts a dense+relu hidden head layer so fusion and the
// multi-op epilogue are exercised too.
func rnnModel(t testing.TB, T, D, H, C int, withReLU bool, seed int64) *nn.Model {
	t.Helper()
	specs := []nn.LayerSpec{{Type: "fastgrnn", RNN: &nn.RNNSpec{T: T, D: D, H: H}}}
	if withReLU {
		specs = append(specs,
			nn.LayerSpec{Type: "dense", In: H, Out: H + 3},
			nn.LayerSpec{Type: "relu"},
			nn.LayerSpec{Type: "dense", In: H + 3, Out: C},
		)
	} else {
		specs = append(specs, nn.LayerSpec{Type: "dense", In: H, Out: C})
	}
	m, err := nn.NewModel("rnn-exit", []int{T * D}, specs)
	if err != nil {
		t.Fatal(err)
	}
	m.InitParams(rand.New(rand.NewSource(seed)))
	m.FreezeInference()
	return m
}

func sampleRows(rng *rand.Rand, batch, width int) []*tensor.Tensor {
	xs := make([]*tensor.Tensor, batch)
	for b := range xs {
		x := tensor.New(width)
		for i := range x.Data() {
			x.Data()[i] = rng.Float32()*4 - 2
		}
		xs[b] = x
	}
	return xs
}

func stackRows(t testing.TB, xs []*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	x, err := tensor.Stack(xs)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// The early-exit parity property (satellite): per sample, the compiled
// early-exit path is bitwise identical to nn.RNNEarlyExit on the frozen
// model — class, confidence, and steps used — across random shapes,
// batch sizes, and thresholds; and with the threshold disabled (+Inf)
// the plan is identical to the plain no-exit plan.
func TestEarlyExitPlanBitwiseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cases := []struct {
		T, D, H, C int
		relu       bool
	}{
		{T: 4, D: 3, H: 8, C: 3, relu: false},
		{T: 6, D: 5, H: 10, C: 4, relu: true},
		{T: 9, D: 2, H: 6, C: 5, relu: false},
	}
	thresholds := []float64{0.15, 0.34, 0.6, 0.92, 1.0}
	for ci, tc := range cases {
		m := rnnModel(t, tc.T, tc.D, tc.H, tc.C, tc.relu, int64(100+ci))
		for _, batch := range []int{1, 2, 7, 12} {
			xs := sampleRows(rng, batch, tc.T*tc.D)
			x := stackRows(t, xs)
			for _, thr := range thresholds {
				p, err := Compile(m, Options{ExitThreshold: thr})
				if err != nil {
					t.Fatalf("case %d: %v", ci, err)
				}
				if !p.SupportsEarlyExit() {
					t.Fatalf("case %d: plan not exit-capable: %+v", ci, p.Ops())
				}
				want, err := nn.RNNEarlyExit(m, x, thr)
				if err != nil {
					t.Fatalf("case %d thr %v: reference: %v", ci, thr, err)
				}
				cls, conf, steps, err := p.InferBatchSteps(xs, nil, nil, nil)
				if err != nil {
					t.Fatalf("case %d thr %v: plan: %v", ci, thr, err)
				}
				for b := 0; b < batch; b++ {
					if cls[b] != want[b].Class || conf[b] != want[b].Confidence || steps[b] != want[b].StepsUsed {
						t.Fatalf("case %d thr %v batch %d sample %d: plan (class %d, conf %v, steps %d) vs reference (%d, %v, %d)",
							ci, thr, batch, b, cls[b], conf[b], steps[b],
							want[b].Class, want[b].Confidence, want[b].StepsUsed)
					}
				}
			}

			// Threshold +Inf (and the zero value) disable the epilogue:
			// identical to the no-exit plan, full window for every sample.
			off, err := Compile(m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			offCls, offConf, offSteps, err := off.InferBatchSteps(xs, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			inf, err := Compile(m, Options{ExitThreshold: math.Inf(1)})
			if err != nil {
				t.Fatal(err)
			}
			infCls, infConf, infSteps, err := inf.InferBatchSteps(xs, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := nn.RNNEarlyExit(m, x, math.Inf(1))
			if err != nil {
				t.Fatal(err)
			}
			for b := 0; b < batch; b++ {
				if offSteps[b] != tc.T || infSteps[b] != tc.T {
					t.Fatalf("disabled thresholds must use the full window: %d/%d of %d", offSteps[b], infSteps[b], tc.T)
				}
				if offCls[b] != infCls[b] || offConf[b] != infConf[b] {
					t.Fatalf("sample %d: zero-value vs +Inf threshold disagree: (%d, %v) vs (%d, %v)",
						b, offCls[b], offConf[b], infCls[b], infConf[b])
				}
				if infCls[b] != ref[b].Class || infConf[b] != ref[b].Confidence {
					t.Fatalf("sample %d: no-exit plan (class %d, conf %v) vs full-window reference (%d, %v)",
						b, infCls[b], infConf[b], ref[b].Class, ref[b].Confidence)
				}
			}
		}
	}
}

// The threshold is a live knob: flipping it on an existing plan changes
// behaviour without recompilation, and out-of-range values disable.
func TestExitThresholdIsALiveKnob(t *testing.T) {
	m := rnnModel(t, 6, 4, 8, 3, false, 9)
	p, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{0, -1, 1.5, math.Inf(1), math.NaN()} {
		p.SetExitThreshold(bad)
		if !math.IsInf(p.ExitThreshold(), 1) {
			t.Fatalf("SetExitThreshold(%v) should disable, got %v", bad, p.ExitThreshold())
		}
	}
	p.SetExitThreshold(0.34)
	if p.ExitThreshold() != 0.34 {
		t.Fatalf("threshold = %v, want 0.34", p.ExitThreshold())
	}
	xs := sampleRows(rand.New(rand.NewSource(10)), 9, 24)
	_, _, steps, err := p.InferBatchSteps(xs, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	exited := false
	for _, s := range steps {
		if s < 6 {
			exited = true
		}
	}
	if !exited {
		t.Fatalf("threshold 0.34 over 3 classes should retire samples early; steps = %v", steps)
	}
}

// Mid-batch repack keeps the zero-allocation steady state (satellite):
// after warm-up, early-exit inference with samples retiring at different
// steps performs no heap allocations per batch.
func TestEarlyExitSteadyStateAllocFree(t *testing.T) {
	m := rnnModel(t, 8, 4, 8, 3, true, 21)
	p, err := Compile(m, Options{ExitThreshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	xs := sampleRows(rand.New(rand.NewSource(22)), 11, 32)
	var cls []int
	var conf []float64
	var steps []int
	for i := 0; i < 3; i++ { // warm the arena slab, header cache, scratch
		if cls, conf, steps, err = p.InferBatchSteps(xs, cls, conf, steps); err != nil {
			t.Fatal(err)
		}
	}
	spread := false
	for _, s := range steps[1:] {
		if s != steps[0] {
			spread = true
		}
	}
	if !spread {
		t.Logf("note: all samples exited at step %d; repack path not spread (still measuring)", steps[0])
	}
	allocs := testing.AllocsPerRun(50, func() {
		cls, conf, steps, err = p.InferBatchSteps(xs, cls, conf, steps)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("early-exit steady state allocates %.1f allocs/op, want 0", allocs)
	}
}

// benchExitModel builds a model with handcrafted weights whose early-exit
// behaviour is input-controlled: samples with a strong feature-0 signal
// saturate the head within a couple of steps ("easy"), zero inputs keep
// the head at uniform confidence forever ("hard").
func benchExitModel(b *testing.B, T, D, H, C int) *nn.Model {
	b.Helper()
	m, err := nn.NewModel("bench-exit", []int{T * D}, []nn.LayerSpec{
		{Type: "fastgrnn", RNN: &nn.RNNSpec{T: T, D: D, H: H}},
		{Type: "dense", In: H, Out: C},
	})
	if err != nil {
		b.Fatal(err)
	}
	rnn := m.Layers[0].(*nn.FastGRNN)
	for i := 0; i < H; i++ {
		rnn.W.Data()[i*D] = 1.5 // route feature 0 into every unit
		rnn.U.Data()[i*H+i] = 0.5
		rnn.Bz.Data()[i] = -8 // z≈0: the update gate passes h̃ straight through
	}
	head := m.Layers[1].(*nn.Dense)
	for j := 0; j < H; j++ {
		head.W.Data()[0*H+j] = 4.0 / float32(H) // class 0 collects the saturated state
	}
	m.FreezeInference()
	return m
}

// BenchmarkPlanExecuteEarlyExit measures the input-adaptive win: easy
// inputs retire within the first steps and skip most of the window's
// GEMMs; hard inputs pay the full window, like the no-exit plan.
func BenchmarkPlanExecuteEarlyExit(b *testing.B) {
	const T, D, H, C, batch = 24, 8, 96, 4, 16
	m := benchExitModel(b, T, D, H, C)
	for _, mode := range []string{"easy", "hard"} {
		b.Run(mode, func(b *testing.B) {
			p, err := Compile(m, Options{ExitThreshold: 0.9})
			if err != nil {
				b.Fatal(err)
			}
			xs := make([]*tensor.Tensor, batch)
			for i := range xs {
				x := tensor.New(T * D)
				if mode == "easy" {
					for t := 0; t < T; t++ {
						x.Data()[t*D] = 3
					}
				}
				xs[i] = x
			}
			var cls []int
			var conf []float64
			var steps []int
			if cls, conf, steps, err = p.InferBatchSteps(xs, cls, conf, steps); err != nil {
				b.Fatal(err)
			}
			want := T
			if mode == "easy" {
				want = T / 4 // sanity: easy traffic must actually exit early
				if steps[0] > want {
					b.Fatalf("easy input used %d of %d steps", steps[0], T)
				}
			} else if steps[0] != T {
				b.Fatalf("hard input exited at step %d", steps[0])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if cls, conf, steps, err = p.InferBatchSteps(xs, cls, conf, steps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
