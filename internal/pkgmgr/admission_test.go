package pkgmgr

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/hardware"
	"openei/internal/nn"
	"openei/internal/tensor"
)

// tinyDevice returns a synthetic device whose memory fits only a couple of
// the test models, so admission decisions are observable.
func tinyDevice(memBytes int64) hardware.Device {
	return hardware.Device{
		Name: "tiny", Class: hardware.ClassSBC,
		FLOPS: 1e9, Int8Speedup: 2, MemBytes: memBytes, MemBandwidth: 1e9,
		IdleWatts: 1, ActiveWatts: 2, DispatchOverhead: 100 * time.Microsecond,
	}
}

func admissionManager(t *testing.T, memBytes int64) *Manager {
	t.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	m := New(pkg, tinyDevice(memBytes))
	t.Cleanup(m.Close)
	return m
}

func denseModel(name string, width int, seed int64) *nn.Model {
	m := nn.MustModel(name, []int{8}, []nn.LayerSpec{
		{Type: "dense", In: 8, Out: width},
		{Type: "relu"},
		{Type: "dense", In: width, Out: 2},
	})
	m.InitParams(rand.New(rand.NewSource(seed)))
	return m
}

func TestMemoryAccounting(t *testing.T) {
	mgr := admissionManager(t, 64<<20)
	base := mgr.MemoryInUse()
	if base != mgr.Package().RuntimeBytes {
		t.Errorf("empty manager memory = %d, want runtime %d", base, mgr.Package().RuntimeBytes)
	}
	if err := mgr.Load(denseModel("a", 64, 1), LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	after := mgr.MemoryInUse()
	if after <= base {
		t.Error("loading a model did not increase MemoryInUse")
	}
	mm := mgr.MemoryByModel()
	if len(mm) != 1 || mm[0].Name != "a" || mm[0].Bytes <= 0 {
		t.Errorf("MemoryByModel = %+v", mm)
	}
}

func TestLoadWithAdmissionEvictsLRU(t *testing.T) {
	// Size the device so that exactly two models fit: runtime 2 MiB +
	// per-model ~1 MiB residency + weights.
	mgr := admissionManager(t, 2<<20+3<<20)
	a := denseModel("a", 128, 1)
	b := denseModel("b", 128, 2)
	c := denseModel("c", 128, 3)
	if _, err := mgr.LoadWithAdmission(a, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.LoadWithAdmission(b, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" becomes the LRU victim.
	x := tensor.New(1, 8)
	if _, err := mgr.Infer("a", x); err != nil {
		t.Fatal(err)
	}
	evicted, err := mgr.LoadWithAdmission(c, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Errorf("evicted = %v, want [b]", evicted)
	}
	models := mgr.Models()
	if len(models) != 2 || models[0] != "a" || models[1] != "c" {
		t.Errorf("loaded = %v, want [a c]", models)
	}
}

func TestLoadWithAdmissionRejectsImpossible(t *testing.T) {
	mgr := admissionManager(t, 2<<20+512<<10) // not even one model fits
	big := denseModel("big", 4096, 1)
	if _, err := mgr.LoadWithAdmission(big, LoadOptions{}); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("err = %v, want ErrNoCapacity", err)
	}
}

func TestLoadWithAdmissionReplaceSameName(t *testing.T) {
	mgr := admissionManager(t, 2<<20+3<<20)
	if _, err := mgr.LoadWithAdmission(denseModel("a", 128, 1), LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Reloading "a" must not evict anything (it replaces itself).
	evicted, err := mgr.LoadWithAdmission(denseModel("a", 128, 9), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 0 {
		t.Errorf("reload evicted %v", evicted)
	}
	if got := mgr.Models(); len(got) != 1 {
		t.Errorf("models = %v", got)
	}
}

// TestLoadWithAdmissionColdEvictionUnderPressure keeps one model hot
// with traffic while a stream of new loads overflows the device round
// after round: every admission must evict the coldest model, never the
// hot one, and the modelled memory must stay within the device budget
// throughout.
func TestLoadWithAdmissionColdEvictionUnderPressure(t *testing.T) {
	// Runtime 2 MiB + room for roughly three small models.
	mgr := admissionManager(t, 2<<20+4<<20)
	x := tensor.New(1, 8)
	touch := func(name string) {
		t.Helper()
		if _, err := mgr.Infer(name, x); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mgr.LoadWithAdmission(denseModel("hot", 32, 0), LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	cold := []string{"c1", "c2", "c3", "c4", "c5"}
	for i, name := range cold {
		touch("hot") // hot stays the most recently used before every load
		time.Sleep(time.Millisecond)
		evicted, err := mgr.LoadWithAdmission(denseModel(name, 32, int64(i+1)), LoadOptions{})
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		for _, v := range evicted {
			if v == "hot" {
				t.Fatalf("load %s evicted the hot model", name)
			}
		}
		// Once the device is full, each round must shed the coldest
		// earlier arrival in FIFO-of-coldness order.
		if i >= 2 {
			want := cold[i-2]
			if len(evicted) != 1 || evicted[0] != want {
				t.Errorf("load %s evicted %v, want [%s]", name, evicted, want)
			}
		}
		if used := mgr.MemoryInUse(); used > mgr.Device().MemBytes {
			t.Errorf("after %s: MemoryInUse %d exceeds device %d", name, used, mgr.Device().MemBytes)
		}
		time.Sleep(time.Millisecond)
	}
	touch("hot") // survived every round
}

// TestLoadWithAdmissionConcurrentPressure hammers admission from several
// goroutines on a device that holds only a couple of models, with
// concurrent inference mixed in. Evicted-model inferences may fail; the
// invariants are no data races, no admission errors, and a final
// footprint within the device budget.
func TestLoadWithAdmissionConcurrentPressure(t *testing.T) {
	mgr := admissionManager(t, 2<<20+3<<20)
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g))
			model := denseModel(name, 64, int64(g))
			x := tensor.New(1, 8)
			for i := 0; i < 15; i++ {
				if _, err := mgr.LoadWithAdmission(model, LoadOptions{}); err != nil {
					errCh <- err
					return
				}
				mgr.Infer(name, x) // may race an eviction; error is fine
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if used := mgr.MemoryInUse(); used > mgr.Device().MemBytes {
		t.Errorf("MemoryInUse %d exceeds device %d", used, mgr.Device().MemBytes)
	}
	if got := mgr.Models(); len(got) == 0 {
		t.Error("no models survived the churn")
	}
}

func TestLoadWithAdmissionMultipleEvictions(t *testing.T) {
	// Three small models fit; one big one needs all their space.
	mgr := admissionManager(t, 2<<20+4<<20)
	for i, name := range []string{"s1", "s2", "s3"} {
		if _, err := mgr.LoadWithAdmission(denseModel(name, 32, int64(i)), LoadOptions{}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // distinct lastUsed ordering
	}
	big := denseModel("big", 50000, 9)
	evicted, err := mgr.LoadWithAdmission(big, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) < 2 {
		t.Errorf("expected multiple evictions, got %v", evicted)
	}
	// Eviction order must follow load order (LRU).
	if evicted[0] != "s1" {
		t.Errorf("first eviction = %s, want s1", evicted[0])
	}
}
