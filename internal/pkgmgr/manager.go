package pkgmgr

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"openei/internal/alem"
	"openei/internal/compress"
	"openei/internal/hardware"
	"openei/internal/nn"
	"openei/internal/plan"
	"openei/internal/tensor"
)

// Manager errors.
var (
	// ErrUnknownModel is returned for operations on unloaded models.
	ErrUnknownModel = errors.New("pkgmgr: unknown model")
	// ErrNoCapacity is returned when a model does not fit device memory.
	ErrNoCapacity = errors.New("pkgmgr: model does not fit device memory")
	// ErrNoTraining is returned when the package profile cannot train.
	ErrNoTraining = errors.New("pkgmgr: package does not support training")
	// ErrDeadline is returned by deadline-admission when the modelled
	// latency cannot meet the requested deadline.
	ErrDeadline = errors.New("pkgmgr: deadline unachievable")
)

// InferenceResult carries predictions plus the modelled cost of the run.
type InferenceResult struct {
	Classes     []int
	Confidences []float64
	// Steps holds the per-sample RNN steps consumed and TotalSteps the
	// full window length T when the serving replica runs an
	// early-exit-capable plan; TotalSteps is 0 (and Steps meaningless)
	// for feed-forward models. Steps[i] < TotalSteps means sample i
	// retired early at the confidence threshold.
	Steps      []int
	TotalSteps int
	// ModelLatency and ModelEnergy come from the hardware cost model (the
	// numbers the paper's ALEM tuple reports); Wall is this process's
	// actual compute time, reported for transparency.
	ModelLatency time.Duration
	ModelEnergy  float64
	Wall         time.Duration
}

// LoadOptions control how a model is installed.
type LoadOptions struct {
	// Quantize converts the model to its int8 artifact at load time when
	// the package supports int8 kernels (TF-Lite-style conversion).
	Quantize bool
	// Backend pins the compiled-plan backend this model's replicas
	// default to. Empty derives it from Quantize (int8 when the package
	// supports it, float32 otherwise). plan.Int4 keeps the float weights
	// resident at load — the nibble-packed artifact is produced at plan
	// compile time, where the per-row scales are computed — and serves
	// replicas on the int4 backend.
	Backend plan.Backend
}

type loaded struct {
	model     *nn.Model
	quantized bool
	backend   plan.Backend // replica default; "" = derive from quantized
	lastUsed  time.Time
}

// Manager is one edge node's package manager: a package profile bound to a
// device, a set of loaded models, and the real-time scheduler. Close must
// be called to stop the scheduler.
type Manager struct {
	pkg alem.Package
	dev hardware.Device

	mu     sync.Mutex
	models map[string]*loaded

	sched *Scheduler
}

// New returns a Manager for the given package profile and device.
func New(pkg alem.Package, dev hardware.Device) *Manager {
	return &Manager{
		pkg:    pkg,
		dev:    dev,
		models: map[string]*loaded{},
		sched:  NewScheduler(),
	}
}

// Package returns the package profile in use.
func (m *Manager) Package() alem.Package { return m.pkg }

// Device returns the device profile in use.
func (m *Manager) Device() hardware.Device { return m.dev }

// Close stops the real-time module.
func (m *Manager) Close() { m.sched.Close() }

// PendingJobs reports the real-time scheduler's queued (not yet started)
// job count — the backlog number /ei_metrics exposes.
func (m *Manager) PendingJobs() int { return m.sched.Pending() }

// Load installs a model (cloning it, so the caller's copy stays
// independent), optionally converting to int8, after checking it fits the
// device alongside the package runtime.
func (m *Manager) Load(model *nn.Model, opts LoadOptions) error {
	clone, quantized, err := m.prepare(model, opts)
	if err != nil {
		return err
	}
	w := m.workload(clone, quantized, 1)
	if m.dev.MemoryBytes(w)+m.pkg.RuntimeBytes > m.dev.MemBytes {
		return fmt.Errorf("%w: %s needs %d bytes on %s (%d available)",
			ErrNoCapacity, model.Name, m.dev.MemoryBytes(w)+m.pkg.RuntimeBytes, m.dev.Name, m.dev.MemBytes)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.models[model.Name] = &loaded{model: clone, quantized: quantized, backend: opts.Backend, lastUsed: time.Now()}
	return nil
}

// prepare clones the model and applies load-time conversion (int8).
func (m *Manager) prepare(model *nn.Model, opts LoadOptions) (*nn.Model, bool, error) {
	clone, err := model.Clone()
	if err != nil {
		return nil, false, fmt.Errorf("pkgmgr: clone %s: %w", model.Name, err)
	}
	quantized := false
	switch {
	case opts.Backend == plan.Int4 && m.pkg.SupportsInt8:
		// The int4 artifact quantizes from the float weights at plan
		// compile time (per-row scales need the originals) — no
		// load-time weight mutation, but the model is deployed
		// quantized for placement and cost purposes.
		quantized = true
	case (opts.Quantize || opts.Backend == plan.Int8) && m.pkg.SupportsInt8:
		if _, err := compress.QuantizeInt8(clone); err != nil {
			return nil, false, fmt.Errorf("pkgmgr: quantize %s: %w", model.Name, err)
		}
		quantized = true
	}
	return clone, quantized, nil
}

// Unload removes a model; unloading an absent model is a no-op.
func (m *Manager) Unload(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.models, name)
}

// Models lists loaded model names, sorted.
func (m *Manager) Models() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.models))
	for name := range m.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Placement describes one loaded model's deployed representation: its
// name, the bytes its weights occupy as stored (int8 artifacts count at
// one byte per parameter), and whether it was quantized at load. It is
// what /ei_status advertises so cluster membership gossip carries
// placement info without a second probe.
type Placement struct {
	Name        string `json:"name"`
	WeightBytes int64  `json:"weight_bytes"`
	Quantized   bool   `json:"quantized"`
}

// Placements lists every loaded model's deployed representation, sorted
// by name.
func (m *Manager) Placements() []Placement {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Placement, 0, len(m.models))
	for name, l := range m.models {
		out = append(out, Placement{
			Name:        name,
			WeightBytes: l.model.WeightBytes(),
			Quantized:   l.quantized,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Model returns the loaded model (the manager's clone). Callers must not
// run it concurrently with manager operations; prefer Infer.
func (m *Manager) Model(name string) (*nn.Model, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.models[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return l.model, nil
}

func (m *Manager) workload(model *nn.Model, quantized bool, batch int) hardware.Workload {
	w := hardware.Workload{
		FLOPs:           model.FLOPs(batch),
		WeightBytes:     model.WeightBytes(),
		ActivationBytes: model.ActivationBytes() * int64(batch),
		EfficiencyScale: m.pkg.Efficiency,
		DispatchScale:   m.pkg.DispatchScale,
		LayerCount:      len(model.Layers),
		Int8:            quantized && m.pkg.SupportsInt8,
	}
	if m.pkg.SupportsFusion && w.LayerCount > 1 {
		w.LayerCount = (w.LayerCount + 1) / 2
	}
	return w
}

// Infer runs the model on x at normal priority.
func (m *Manager) Infer(name string, x *tensor.Tensor) (InferenceResult, error) {
	return m.inferAt(name, x, PriorityNormal)
}

// InferUrgent runs at real-time priority, jumping ahead of queued work —
// the paper's "if the application is urgent, the real-time machine
// learning module will be called".
func (m *Manager) InferUrgent(name string, x *tensor.Tensor) (InferenceResult, error) {
	return m.inferAt(name, x, PriorityRealTime)
}

// InferWithDeadline admits the job only if the modelled latency fits the
// deadline; admitted jobs run at real-time priority.
func (m *Manager) InferWithDeadline(name string, x *tensor.Tensor, deadline time.Duration) (InferenceResult, error) {
	m.mu.Lock()
	l, ok := m.models[name]
	m.mu.Unlock()
	if !ok {
		return InferenceResult{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	batch := x.Dim(0)
	lat, err := m.dev.Latency(m.workload(l.model, l.quantized, batch))
	if err != nil {
		return InferenceResult{}, err
	}
	if lat > deadline {
		return InferenceResult{}, fmt.Errorf("%w: modelled %v > deadline %v on %s", ErrDeadline, lat, deadline, m.dev.Name)
	}
	return m.inferAt(name, x, PriorityRealTime)
}

func (m *Manager) inferAt(name string, x *tensor.Tensor, prio Priority) (InferenceResult, error) {
	m.mu.Lock()
	l, ok := m.models[name]
	if ok {
		l.lastUsed = time.Now()
	}
	m.mu.Unlock()
	if !ok {
		return InferenceResult{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if x.Dims() < 2 {
		return InferenceResult{}, fmt.Errorf("pkgmgr: input must be batched, got shape %v", x.Shape())
	}
	var res InferenceResult
	var inferErr error
	submitErr := m.sched.Submit(prio, func() {
		start := time.Now()
		cls, conf, err := nn.TopConfidence(l.model, x)
		if err != nil {
			inferErr = err
			return
		}
		res.Classes = cls
		res.Confidences = conf
		res.Wall = time.Since(start)
	})
	if submitErr != nil {
		return InferenceResult{}, submitErr
	}
	if inferErr != nil {
		return InferenceResult{}, fmt.Errorf("pkgmgr: infer %s: %w", name, inferErr)
	}
	batch := x.Dim(0)
	w := m.workload(l.model, l.quantized, batch)
	lat, err := m.dev.Latency(w)
	if err != nil {
		return InferenceResult{}, err
	}
	energy, err := m.dev.EnergyJoules(w)
	if err != nil {
		return InferenceResult{}, err
	}
	res.ModelLatency = lat
	res.ModelEnergy = energy
	return res, nil
}

// Train runs local training on a loaded model at batch priority (training
// yields to inference, as the real-time module demands). It fails unless
// the package profile supports training.
func (m *Manager) Train(name string, data nn.Dataset, cfg nn.TrainConfig) (loss, acc float64, err error) {
	if !m.pkg.SupportsTraining {
		return 0, 0, fmt.Errorf("%w: %s", ErrNoTraining, m.pkg.Name)
	}
	m.mu.Lock()
	l, ok := m.models[name]
	m.mu.Unlock()
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	submitErr := m.sched.Submit(PriorityBatch, func() {
		// nn.Train drops any installed int8 artifacts, so replicas
		// compiled afterwards quantize the learned weights.
		loss, acc, err = nn.Train(l.model, data, cfg)
	})
	if submitErr != nil {
		return 0, 0, submitErr
	}
	if err != nil {
		return 0, 0, fmt.Errorf("pkgmgr: train %s: %w", name, err)
	}
	return loss, acc, nil
}

// TransferLearn retrains only the classifier head on local data — the
// paper's Dataflow 3 ("retrain the model on the edge by taking advantage
// of transfer learning … a personalized model").
func (m *Manager) TransferLearn(name string, data nn.Dataset, headLayers, epochs int, rng *rand.Rand) error {
	if !m.pkg.SupportsTraining {
		return fmt.Errorf("%w: %s", ErrNoTraining, m.pkg.Name)
	}
	m.mu.Lock()
	l, ok := m.models[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	cfg := nn.TrainConfig{
		Epochs: epochs, BatchSize: 16, LR: 0.02, Momentum: 0.9,
		FrozenMask: nn.FreezeAllButHead(l.model, headLayers),
		Rand:       rng,
	}
	var err error
	submitErr := m.sched.Submit(PriorityBatch, func() {
		_, _, err = nn.Train(l.model, data, cfg)
	})
	if submitErr != nil {
		return submitErr
	}
	if err != nil {
		return fmt.Errorf("pkgmgr: transfer-learn %s: %w", name, err)
	}
	return nil
}

// Snapshot serializes the current weights of a loaded model — what the
// cloud-edge collaboration uploads after local retraining.
func (m *Manager) Snapshot(name string) ([]byte, error) {
	m.mu.Lock()
	l, ok := m.models[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	var data []byte
	var err error
	submitErr := m.sched.Submit(PriorityNormal, func() {
		data, err = nn.EncodeModel(l.model)
	})
	if submitErr != nil {
		return nil, submitErr
	}
	return data, err
}

// ALEMOf returns the modelled ALEM costs (latency, energy, memory) of a
// loaded model at batch 1; accuracy is not measured here (the profiler
// owns that) and is reported as 0.
func (m *Manager) ALEMOf(name string) (alem.ALEM, error) {
	m.mu.Lock()
	l, ok := m.models[name]
	m.mu.Unlock()
	if !ok {
		return alem.ALEM{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	w := m.workload(l.model, l.quantized, 1)
	lat, err := m.dev.Latency(w)
	if err != nil {
		return alem.ALEM{}, err
	}
	energy, err := m.dev.EnergyJoules(w)
	if err != nil {
		return alem.ALEM{}, err
	}
	return alem.ALEM{
		Latency: lat,
		Energy:  energy,
		Memory:  m.dev.MemoryBytes(w) + m.pkg.RuntimeBytes,
	}, nil
}
