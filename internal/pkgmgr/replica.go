package pkgmgr

import (
	"fmt"
	"time"

	"openei/internal/hardware"
	"openei/internal/nn"
	"openei/internal/tensor"
)

// Replica is an independently executable clone of a loaded model. Unlike
// Manager.Infer, which serializes every job through the node's single
// real-time scheduler worker, each Replica owns a private copy of the
// weights and may run concurrently with other replicas — this is how the
// serving engine turns a multi-core edge into a replica pool. A Replica is
// not itself safe for concurrent use; confine each one to a single worker
// goroutine.
type Replica struct {
	name      string
	model     *nn.Model
	quantized bool
	mgr       *Manager

	// arena backs every activation of a request; after the first request
	// sizes it, steady-state inference allocates nothing.
	arena *tensor.Arena
	// cls/conf are the recycled result buffers behind InferenceResult.
	cls  []int
	conf []float64
	// wproto caches the batch-independent parts of the cost-model
	// workload; the per-batch fields are linear in batch size, so scaling
	// flopsPerSample/actBytesPerSample reproduces workload() exactly
	// without re-walking the layer graph per request.
	wproto            hardware.Workload
	flopsPerSample    int64
	actBytesPerSample int64
}

// NewReplica clones the named loaded model into a Replica. The clone is
// detached: Unload or retraining of the manager's copy does not affect it.
func (m *Manager) NewReplica(name string) (*Replica, error) {
	m.mu.Lock()
	l, ok := m.models[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	clone, err := l.model.Clone()
	if err != nil {
		return nil, fmt.Errorf("pkgmgr: replica of %s: %w", name, err)
	}
	// The replica's weights never change again, so per-call inference
	// costs (int8 weight expansion) are paid once here instead of on
	// every request — the manager's own copy stays mutable for transfer
	// learning and cannot take this shortcut.
	clone.FreezeInference()
	r := &Replica{
		name: name, model: clone, quantized: l.quantized, mgr: m,
		arena:  tensor.NewArena(0),
		wproto: m.workload(clone, l.quantized, 1),
	}
	r.flopsPerSample = r.wproto.FLOPs
	r.actBytesPerSample = r.wproto.ActivationBytes
	return r, nil
}

// Name returns the model name the replica was cloned from.
func (r *Replica) Name() string { return r.name }

// InputShape returns the model's declared per-sample input shape.
func (r *Replica) InputShape() []int {
	return append([]int(nil), r.model.InputShape...)
}

// InferBatch stacks same-shaped single-sample inputs into one batch tensor
// and runs a single forward pass on the replica's private weights. The
// result slices are indexed like xs.
//
// Activations live in the replica's arena and the Classes/Confidences
// slices are recycled buffers: both are valid only until the replica's
// next InferBatch call. Callers that retain results across calls (none of
// the serving pipeline does — it fans values out immediately) must copy.
func (r *Replica) InferBatch(xs []*tensor.Tensor) (InferenceResult, error) {
	r.arena.Reset()
	x, err := r.arena.StackArena(xs)
	if err != nil {
		return InferenceResult{}, fmt.Errorf("pkgmgr: replica %s: %w", r.name, err)
	}
	start := time.Now()
	cls, conf, err := nn.TopConfidenceArena(r.model, x, r.arena, r.cls, r.conf)
	if err != nil {
		return InferenceResult{}, fmt.Errorf("pkgmgr: replica infer %s: %w", r.name, err)
	}
	r.cls, r.conf = cls, conf
	res := InferenceResult{Classes: cls, Confidences: conf, Wall: time.Since(start)}
	w := r.wproto
	w.FLOPs = r.flopsPerSample * int64(len(xs))
	w.ActivationBytes = r.actBytesPerSample * int64(len(xs))
	if res.ModelLatency, err = r.mgr.dev.Latency(w); err != nil {
		return InferenceResult{}, err
	}
	if res.ModelEnergy, err = r.mgr.dev.EnergyJoules(w); err != nil {
		return InferenceResult{}, err
	}
	return res, nil
}

// InferBatch stacks single-sample inputs into one batch tensor and runs it
// through the manager's scheduled inference path at normal priority. It is
// the batched entry point for callers that hold sample slices but want the
// real-time scheduler's serialization (the serving engine instead uses
// Replica.InferBatch, which runs outside the scheduler for parallelism).
func (m *Manager) InferBatch(name string, xs []*tensor.Tensor) (InferenceResult, error) {
	x, err := tensor.Stack(xs)
	if err != nil {
		return InferenceResult{}, fmt.Errorf("pkgmgr: infer batch %s: %w", name, err)
	}
	return m.Infer(name, x)
}
