package pkgmgr

import (
	"fmt"
	"time"

	"openei/internal/hardware"
	"openei/internal/plan"
	"openei/internal/tensor"
)

// Replica is an independently executable clone of a loaded model. Unlike
// Manager.Infer, which serializes every job through the node's single
// real-time scheduler worker, each Replica owns a private copy of the
// weights and may run concurrently with other replicas — this is how the
// serving engine turns a multi-core edge into a replica pool. A Replica is
// not itself safe for concurrent use; confine each one to a single worker
// goroutine.
//
// A replica executes a compiled inference plan (internal/plan): the model
// is lowered once into a fused op graph and run through the replica's
// backend — float32, or genuine int8 kernels for models loaded quantized.
// Every built-in layer lowers, including recurrent FastGRNN stacks (a
// first-class RNN op since the early-exit revision); there is no
// layer-walk fallback left.
//
// Int8 replicas created without calibration data self-calibrate: each
// replica's activation scales widen over the first batches it happens to
// serve, so two replicas of one pipeline may freeze marginally different
// scales (answers differ only within quantization tolerance). Loading a
// model whose artifacts were calibrated offline, or warming a pipeline
// with representative traffic, removes even that spread.
type Replica struct {
	name      string
	plan      *plan.Plan
	quantized bool
	mgr       *Manager

	// inputShape is the model's declared per-sample input shape.
	inputShape []int
	// cls/conf/steps are the recycled result buffers behind
	// InferenceResult.
	cls   []int
	conf  []float64
	steps []int
	// wproto caches the batch-independent parts of the cost-model
	// workload; the per-batch fields are linear in batch size, so scaling
	// flopsPerSample/actBytesPerSample reproduces workload() exactly
	// without re-walking the layer graph per request.
	wproto            hardware.Workload
	flopsPerSample    int64
	actBytesPerSample int64
}

// NewReplica clones the named loaded model into a Replica on the model's
// default backend: int8 for models loaded quantized on an int8-capable
// package (a "{model}-int8" tier really runs int8 kernels), float32
// otherwise.
func (m *Manager) NewReplica(name string) (*Replica, error) {
	return m.NewReplicaBackend(name, "")
}

// NewReplicaBackend is NewReplica with an explicit execution backend —
// how profiling measures both backends of one model. An empty backend
// selects the loaded model's default.
func (m *Manager) NewReplicaBackend(name string, backend plan.Backend) (*Replica, error) {
	m.mu.Lock()
	l, ok := m.models[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	clone, err := l.model.Clone()
	if err != nil {
		return nil, fmt.Errorf("pkgmgr: replica of %s: %w", name, err)
	}
	if backend == "" {
		backend = l.backend
	}
	if backend == "" {
		backend = plan.Float32
		if l.quantized && m.pkg.SupportsInt8 {
			backend = plan.Int8
		}
	}
	r := &Replica{
		name: name, quantized: l.quantized, mgr: m,
		inputShape: append([]int(nil), clone.InputShape...),
		wproto:     m.workload(clone, l.quantized, 1),
	}
	// Lower the private clone into a compiled plan. The clone never
	// changes again, so compilation costs (weight transposes, batchnorm
	// folds, int8 artifacts) are paid once here instead of per request.
	p, err := plan.Compile(clone, plan.Options{Backend: backend})
	if err != nil {
		return nil, fmt.Errorf("pkgmgr: replica of %s: %w", name, err)
	}
	r.plan = p
	// The cost model sees the deployed representation: the plan's
	// actual weight bytes, and int8 kernels only when the plan runs
	// them.
	r.wproto.WeightBytes = p.WeightBytes()
	r.wproto.Int8 = (backend == plan.Int8 || backend == plan.Int4) && m.pkg.SupportsInt8
	r.flopsPerSample = r.wproto.FLOPs
	r.actBytesPerSample = r.wproto.ActivationBytes
	return r, nil
}

// Name returns the model name the replica was cloned from.
func (r *Replica) Name() string { return r.name }

// Kernels reports the compute-kernel dispatch of the replica's compiled
// plan (see plan.Kernels) — surfaced per pipeline in /ei_metrics.
func (r *Replica) Kernels() string { return r.plan.Kernels() }

// Backend reports the execution backend serving this replica — the
// compiled plan's backend name. Surfaced per pipeline in /ei_metrics.
func (r *Replica) Backend() string { return string(r.plan.Backend()) }

// InputShape returns the model's declared per-sample input shape.
func (r *Replica) InputShape() []int {
	return append([]int(nil), r.inputShape...)
}

// SupportsEarlyExit reports whether the replica's compiled graph admits
// the confidence-threshold early exit ([view…, fastgrnn, head…]).
func (r *Replica) SupportsEarlyExit() bool { return r.plan.SupportsEarlyExit() }

// RNNSteps returns the recurrent window length T of an early-exit-capable
// replica (0 otherwise) — the denominator of the mean-steps-used metric.
func (r *Replica) RNNSteps() int { return r.plan.RNNSteps() }

// SetExitThreshold installs the live confidence threshold on the
// replica's plan; values outside (0, 1] disable early exit. Safe to call
// concurrently with the replica's worker (the knob is the plan's one
// atomic field).
func (r *Replica) SetExitThreshold(thr float64) { r.plan.SetExitThreshold(thr) }

// ExitThreshold returns the live threshold (+Inf when disabled or
// unsupported).
func (r *Replica) ExitThreshold() float64 { return r.plan.ExitThreshold() }

// InferBatch stacks same-shaped single-sample inputs into one batch tensor
// and runs a single forward pass on the replica's private weights. The
// result slices are indexed like xs.
//
// Activations live in the replica's (plan's) arena and the
// Classes/Confidences/Steps slices are recycled buffers: both are valid
// only until the replica's next InferBatch call. Callers that retain
// results across calls (none of the serving pipeline does — it fans
// values out immediately) must copy.
func (r *Replica) InferBatch(xs []*tensor.Tensor) (InferenceResult, error) {
	start := time.Now()
	cls, conf, steps, err := r.plan.InferBatchSteps(xs, r.cls, r.conf, r.steps)
	if err != nil {
		return InferenceResult{}, fmt.Errorf("pkgmgr: replica infer %s: %w", r.name, err)
	}
	r.cls, r.conf, r.steps = cls, conf, steps
	total := r.plan.RNNSteps()
	res := InferenceResult{Classes: cls, Confidences: conf, Steps: steps, TotalSteps: total, Wall: time.Since(start)}
	w := r.wproto
	w.FLOPs = r.flopsPerSample * int64(len(xs))
	w.ActivationBytes = r.actBytesPerSample * int64(len(xs))
	if total > 0 {
		// Early exit makes the forward cost input-dependent: scale the
		// recurrent window's share of the FLOPs by the steps actually
		// consumed, so latency/energy estimates track the adaptive win.
		var used int64
		for _, s := range steps {
			used += int64(s)
		}
		w.FLOPs = r.flopsPerSample * used / int64(total)
	}
	if res.ModelLatency, err = r.mgr.dev.Latency(w); err != nil {
		return InferenceResult{}, err
	}
	if res.ModelEnergy, err = r.mgr.dev.EnergyJoules(w); err != nil {
		return InferenceResult{}, err
	}
	return res, nil
}

// InferBatch stacks single-sample inputs into one batch tensor and runs it
// through the manager's scheduled inference path at normal priority. It is
// the batched entry point for callers that hold sample slices but want the
// real-time scheduler's serialization (the serving engine instead uses
// Replica.InferBatch, which runs outside the scheduler for parallelism).
func (m *Manager) InferBatch(name string, xs []*tensor.Tensor) (InferenceResult, error) {
	x, err := tensor.Stack(xs)
	if err != nil {
		return InferenceResult{}, fmt.Errorf("pkgmgr: infer batch %s: %w", name, err)
	}
	return m.Infer(name, x)
}
