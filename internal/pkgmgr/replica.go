package pkgmgr

import (
	"errors"
	"fmt"
	"time"

	"openei/internal/hardware"
	"openei/internal/nn"
	"openei/internal/plan"
	"openei/internal/tensor"
)

// Replica is an independently executable clone of a loaded model. Unlike
// Manager.Infer, which serializes every job through the node's single
// real-time scheduler worker, each Replica owns a private copy of the
// weights and may run concurrently with other replicas — this is how the
// serving engine turns a multi-core edge into a replica pool. A Replica is
// not itself safe for concurrent use; confine each one to a single worker
// goroutine.
//
// A replica executes a compiled inference plan (internal/plan): the model
// is lowered once into a fused op graph and run through the replica's
// backend — float32, or genuine int8 kernels for models loaded quantized.
// Models the plan IR cannot lower (recurrent stacks) fall back to the
// frozen layer walk.
//
// Int8 replicas created without calibration data self-calibrate: each
// replica's activation scales widen over the first batches it happens to
// serve, so two replicas of one pipeline may freeze marginally different
// scales (answers differ only within quantization tolerance). Loading a
// model whose artifacts were calibrated offline, or warming a pipeline
// with representative traffic, removes even that spread.
type Replica struct {
	name      string
	plan      *plan.Plan
	model     *nn.Model // layer-walk fallback; nil when plan is set
	quantized bool
	mgr       *Manager

	// arena backs every activation of a request; after the first request
	// sizes it, steady-state inference allocates nothing. (Plan-backed
	// replicas use the plan's own arena; this one serves the fallback.)
	arena *tensor.Arena
	// inputShape is the model's declared per-sample input shape.
	inputShape []int
	// cls/conf are the recycled result buffers behind InferenceResult.
	cls  []int
	conf []float64
	// wproto caches the batch-independent parts of the cost-model
	// workload; the per-batch fields are linear in batch size, so scaling
	// flopsPerSample/actBytesPerSample reproduces workload() exactly
	// without re-walking the layer graph per request.
	wproto            hardware.Workload
	flopsPerSample    int64
	actBytesPerSample int64
}

// NewReplica clones the named loaded model into a Replica on the model's
// default backend: int8 for models loaded quantized on an int8-capable
// package (a "{model}-int8" tier really runs int8 kernels), float32
// otherwise.
func (m *Manager) NewReplica(name string) (*Replica, error) {
	return m.NewReplicaBackend(name, "")
}

// NewReplicaBackend is NewReplica with an explicit execution backend —
// how profiling measures both backends of one model. An empty backend
// selects the loaded model's default.
func (m *Manager) NewReplicaBackend(name string, backend plan.Backend) (*Replica, error) {
	m.mu.Lock()
	l, ok := m.models[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	clone, err := l.model.Clone()
	if err != nil {
		return nil, fmt.Errorf("pkgmgr: replica of %s: %w", name, err)
	}
	if backend == "" {
		backend = plan.Float32
		if l.quantized && m.pkg.SupportsInt8 {
			backend = plan.Int8
		}
	}
	r := &Replica{
		name: name, quantized: l.quantized, mgr: m,
		inputShape: append([]int(nil), clone.InputShape...),
		wproto:     m.workload(clone, l.quantized, 1),
	}
	// Lower the private clone into a compiled plan. The clone never
	// changes again, so compilation costs (weight transposes, batchnorm
	// folds, int8 artifacts) are paid once here instead of per request.
	switch p, err := plan.Compile(clone, plan.Options{Backend: backend}); {
	case err == nil:
		r.plan = p
		// The cost model sees the deployed representation: the plan's
		// actual weight bytes, and int8 kernels only when the plan runs
		// them.
		r.wproto.WeightBytes = p.WeightBytes()
		r.wproto.Int8 = backend == plan.Int8 && m.pkg.SupportsInt8
	case errors.Is(err, plan.ErrUnsupported):
		// The plan IR cannot express this model (recurrent stack): keep
		// the frozen layer walk of earlier revisions. Only this error is
		// a fallback — anything else (unknown backend, malformed model)
		// must not silently serve a different backend than requested.
		clone.FreezeInference()
		r.model = clone
		r.arena = tensor.NewArena(0)
		// Freezing expanded any int8 artifact back to float, and the
		// walk runs float kernels — recost the workload so the replica's
		// latency/energy/memory numbers describe what actually executes.
		r.wproto = m.workload(clone, false, 1)
	default:
		return nil, fmt.Errorf("pkgmgr: replica of %s: %w", name, err)
	}
	r.flopsPerSample = r.wproto.FLOPs
	r.actBytesPerSample = r.wproto.ActivationBytes
	return r, nil
}

// Name returns the model name the replica was cloned from.
func (r *Replica) Name() string { return r.name }

// Backend reports the execution backend serving this replica: a compiled
// plan's backend, or "layer-walk" for the fallback path. Surfaced per
// pipeline in /ei_metrics.
func (r *Replica) Backend() string {
	if r.plan != nil {
		return string(r.plan.Backend())
	}
	return "layer-walk"
}

// InputShape returns the model's declared per-sample input shape.
func (r *Replica) InputShape() []int {
	return append([]int(nil), r.inputShape...)
}

// InferBatch stacks same-shaped single-sample inputs into one batch tensor
// and runs a single forward pass on the replica's private weights. The
// result slices are indexed like xs.
//
// Activations live in the replica's (plan's) arena and the
// Classes/Confidences slices are recycled buffers: both are valid only
// until the replica's next InferBatch call. Callers that retain results
// across calls (none of the serving pipeline does — it fans values out
// immediately) must copy.
func (r *Replica) InferBatch(xs []*tensor.Tensor) (InferenceResult, error) {
	start := time.Now()
	var (
		cls  []int
		conf []float64
		err  error
	)
	if r.plan != nil {
		cls, conf, err = r.plan.InferBatch(xs, r.cls, r.conf)
	} else {
		r.arena.Reset()
		var x *tensor.Tensor
		x, err = r.arena.StackArena(xs)
		if err != nil {
			return InferenceResult{}, fmt.Errorf("pkgmgr: replica %s: %w", r.name, err)
		}
		cls, conf, err = nn.TopConfidenceArena(r.model, x, r.arena, r.cls, r.conf)
	}
	if err != nil {
		return InferenceResult{}, fmt.Errorf("pkgmgr: replica infer %s: %w", r.name, err)
	}
	r.cls, r.conf = cls, conf
	res := InferenceResult{Classes: cls, Confidences: conf, Wall: time.Since(start)}
	w := r.wproto
	w.FLOPs = r.flopsPerSample * int64(len(xs))
	w.ActivationBytes = r.actBytesPerSample * int64(len(xs))
	if res.ModelLatency, err = r.mgr.dev.Latency(w); err != nil {
		return InferenceResult{}, err
	}
	if res.ModelEnergy, err = r.mgr.dev.EnergyJoules(w); err != nil {
		return InferenceResult{}, err
	}
	return res, nil
}

// InferBatch stacks single-sample inputs into one batch tensor and runs it
// through the manager's scheduled inference path at normal priority. It is
// the batched entry point for callers that hold sample slices but want the
// real-time scheduler's serialization (the serving engine instead uses
// Replica.InferBatch, which runs outside the scheduler for parallelism).
func (m *Manager) InferBatch(name string, xs []*tensor.Tensor) (InferenceResult, error) {
	x, err := tensor.Stack(xs)
	if err != nil {
		return InferenceResult{}, fmt.Errorf("pkgmgr: infer batch %s: %w", name, err)
	}
	return m.Infer(name, x)
}
