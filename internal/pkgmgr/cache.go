package pkgmgr

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"openei/internal/tensor"
)

// CacheStats reports result-cache counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Expired counts hits rejected because the entry outlived the TTL.
	Expired int64
}

// ResultCache memoizes inference results keyed by (model, input) — the
// MUVR-style edge caching mechanism of §V.C ("MUVR is proposed … to
// boost the multi-user gaming experience with the edge caching
// mechanism"): when many users or repeated polls hit the edge with the
// same content, the edge serves the cached answer instead of re-running
// the model. Entries are LRU-evicted beyond the capacity and expire
// after the TTL (a stale detection must not outlive its scene). The zero
// value is not usable; construct with NewResultCache. ResultCache is
// safe for concurrent use.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	order   *list.List // front = most recent; values are *cacheEntry
	entries map[cacheKey]*list.Element
	stats   CacheStats
	nowFunc func() time.Time
}

type cacheKey struct {
	model string
	hash  uint64
}

type cacheEntry struct {
	key    cacheKey
	result InferenceResult
	stored time.Time
}

// NewResultCache returns a cache holding at most capacity results
// (≤0 means 128) that expire after ttl (≤0 means never).
func NewResultCache(capacity int, ttl time.Duration) *ResultCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &ResultCache{
		cap:     capacity,
		ttl:     ttl,
		order:   list.New(),
		entries: map[cacheKey]*list.Element{},
		nowFunc: time.Now,
	}
}

// Infer serves the result from cache when the same model has already
// seen a bit-identical input; otherwise it runs m.Infer and stores the
// result. The second return reports whether this was a cache hit.
func (c *ResultCache) Infer(m *Manager, name string, x *tensor.Tensor) (InferenceResult, bool, error) {
	key := cacheKey{model: name, hash: hashTensor(x)}
	if res, ok := c.lookup(key); ok {
		return res, true, nil
	}
	res, err := m.Infer(name, x)
	if err != nil {
		return InferenceResult{}, false, err
	}
	c.store(key, res)
	return res, false, nil
}

// lookup returns a live entry and refreshes its recency.
func (c *ResultCache) lookup(key cacheKey) (InferenceResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return InferenceResult{}, false
	}
	ent := el.Value.(*cacheEntry)
	if c.ttl > 0 && c.nowFunc().Sub(ent.stored) > c.ttl {
		c.order.Remove(el)
		delete(c.entries, key)
		c.stats.Expired++
		c.stats.Misses++
		return InferenceResult{}, false
	}
	c.order.MoveToFront(el)
	c.stats.Hits++
	return ent.result, true
}

// store inserts (or refreshes) an entry, evicting the LRU tail beyond
// capacity.
func (c *ResultCache) store(key cacheKey, res InferenceResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).result = res
		el.Value.(*cacheEntry).stored = c.nowFunc()
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, result: res, stored: c.nowFunc()})
	for c.order.Len() > c.cap {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Len returns the number of cached results.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Purge empties the cache (e.g. after the model is retrained: cached
// answers from the old weights are invalid).
func (c *ResultCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = map[cacheKey]*list.Element{}
}

// hashTensor fingerprints shape + contents with FNV-64a. Bit-identical
// inputs collide on purpose; that is the cache key.
func hashTensor(x *tensor.Tensor) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, d := range x.Shape() {
		binary.LittleEndian.PutUint32(buf[:], uint32(d))
		_, _ = h.Write(buf[:])
	}
	for _, v := range x.Data() {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}
