package pkgmgr

import (
	"fmt"
	"sort"
	"time"

	"openei/internal/nn"
)

// This file addresses the paper's §IV.B open problem "how to execute
// multiple tasks on a package in the meantime": the manager accounts for
// the aggregate memory of every loaded model and can evict cold models to
// admit new ones.

// ModelMemory describes one loaded model's footprint for admission
// decisions.
type ModelMemory struct {
	Name      string
	Bytes     int64
	Quantized bool
	LastUsed  time.Time
}

// totalModelBytesLocked sums the weight+activation footprint of all loaded
// models (runtime residency counted once per model by the device model; a
// small overestimate that errs on the safe side). Callers hold m.mu.
func (m *Manager) totalModelBytesLocked() int64 {
	var total int64
	for _, l := range m.models {
		w := m.workload(l.model, l.quantized, 1)
		total += m.dev.MemoryBytes(w)
	}
	return total
}

// MemoryInUse returns the modelled memory of everything loaded, including
// the package runtime.
func (m *Manager) MemoryInUse() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalModelBytesLocked() + m.pkg.RuntimeBytes
}

// MemoryByModel lists per-model footprints sorted by name.
func (m *Manager) MemoryByModel() []ModelMemory {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ModelMemory, 0, len(m.models))
	for name, l := range m.models {
		w := m.workload(l.model, l.quantized, 1)
		out = append(out, ModelMemory{
			Name: name, Bytes: m.dev.MemoryBytes(w),
			Quantized: l.quantized, LastUsed: l.lastUsed,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LoadWithAdmission installs a model like Load, but accounts for every
// already-loaded model and, when the device would overflow, evicts the
// least-recently-used models (never the one being loaded) until the new
// model fits. It returns the names of evicted models in eviction order.
func (m *Manager) LoadWithAdmission(model *nn.Model, opts LoadOptions) ([]string, error) {
	clone, quantized, err := m.prepare(model, opts)
	if err != nil {
		return nil, err
	}
	need := m.dev.MemoryBytes(m.workload(clone, quantized, 1))
	m.mu.Lock()
	defer m.mu.Unlock()
	if need+m.pkg.RuntimeBytes > m.dev.MemBytes {
		return nil, fmt.Errorf("%w: %s alone needs %d bytes on %s",
			ErrNoCapacity, clone.Name, need+m.pkg.RuntimeBytes, m.dev.Name)
	}
	// Re-loading under the same name replaces the old footprint.
	delete(m.models, clone.Name)
	var evicted []string
	for m.totalModelBytesLocked()+need+m.pkg.RuntimeBytes > m.dev.MemBytes {
		victim := m.coldestLocked()
		if victim == "" {
			return nil, fmt.Errorf("%w: cannot admit %s even after evicting everything",
				ErrNoCapacity, clone.Name)
		}
		delete(m.models, victim)
		evicted = append(evicted, victim)
	}
	m.models[clone.Name] = &loaded{model: clone, quantized: quantized, lastUsed: time.Now()}
	return evicted, nil
}

// coldestLocked returns the least-recently-used loaded model, or "" when
// none remain. Callers hold m.mu.
func (m *Manager) coldestLocked() string {
	var victim string
	var oldest time.Time
	for name, l := range m.models {
		if victim == "" || l.lastUsed.Before(oldest) {
			victim, oldest = name, l.lastUsed
		}
	}
	return victim
}
