package pkgmgr

import (
	"errors"
	"math/rand"
	"testing"

	"openei/internal/nn"
	"openei/internal/tensor"
)

func loadedQuantizedModel(t *testing.T, m *Manager) *nn.Model {
	t.Helper()
	model := nn.MustModel("q-net", []int{8}, []nn.LayerSpec{
		{Type: "dense", In: 8, Out: 16},
		{Type: "relu"},
		{Type: "dense", In: 16, Out: 3},
	})
	model.InitParams(rand.New(rand.NewSource(11)))
	if err := m.Load(model, LoadOptions{Quantize: true}); err != nil {
		t.Fatal(err)
	}
	return model
}

func samples(n, dim int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, n)
	for i := range out {
		data := make([]float32, dim)
		for j := range data {
			data[j] = rng.Float32()
		}
		out[i] = tensor.MustFrom(data, dim)
	}
	return out
}

// A frozen replica must predict exactly what the manager's scheduled path
// predicts — freezing dequantizes and pre-transposes weights but cannot
// change results.
func TestReplicaMatchesManagerPath(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	loadedQuantizedModel(t, m)

	rep, err := m.NewReplica("q-net")
	if err != nil {
		t.Fatal(err)
	}
	xs := samples(13, 8, 5)
	got, err := rep.InferBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.InferBatch("q-net", xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Classes) != 13 || len(want.Classes) != 13 {
		t.Fatalf("batch sizes: replica %d, manager %d", len(got.Classes), len(want.Classes))
	}
	for i := range got.Classes {
		if got.Classes[i] != want.Classes[i] {
			t.Errorf("sample %d: replica class %d, manager class %d", i, got.Classes[i], want.Classes[i])
		}
		if diff := got.Confidences[i] - want.Confidences[i]; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("sample %d: confidence %v vs %v", i, got.Confidences[i], want.Confidences[i])
		}
	}
	if got.ModelLatency != want.ModelLatency || got.ModelEnergy != want.ModelEnergy {
		t.Errorf("cost model diverged: %v/%v vs %v/%v",
			got.ModelLatency, got.ModelEnergy, want.ModelLatency, want.ModelEnergy)
	}
}

// The replica is a snapshot: unloading the manager's copy does not break it.
func TestReplicaSurvivesUnload(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	loadedQuantizedModel(t, m)
	rep, err := m.NewReplica("q-net")
	if err != nil {
		t.Fatal(err)
	}
	m.Unload("q-net")
	if _, err := rep.InferBatch(samples(2, 8, 6)); err != nil {
		t.Errorf("replica after unload: %v", err)
	}
	if _, err := m.NewReplica("q-net"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("NewReplica after unload err = %v", err)
	}
}

func TestInferBatchErrors(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	if _, err := m.InferBatch("nope", samples(1, 8, 7)); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model err = %v", err)
	}
	loadedQuantizedModel(t, m)
	if _, err := m.InferBatch("q-net", nil); err == nil {
		t.Error("empty batch should error")
	}
	mixed := []*tensor.Tensor{tensor.New(8), tensor.New(4)}
	if _, err := m.InferBatch("q-net", mixed); err == nil {
		t.Error("mismatched sample shapes should error")
	}
}
