package pkgmgr

import (
	"errors"
	"math/rand"
	"testing"

	"openei/internal/nn"
	"openei/internal/plan"
	"openei/internal/tensor"
)

func loadedQuantizedModel(t *testing.T, m *Manager) *nn.Model {
	t.Helper()
	model := nn.MustModel("q-net", []int{8}, []nn.LayerSpec{
		{Type: "dense", In: 8, Out: 16},
		{Type: "relu"},
		{Type: "dense", In: 16, Out: 3},
	})
	model.InitParams(rand.New(rand.NewSource(11)))
	if err := m.Load(model, LoadOptions{Quantize: true}); err != nil {
		t.Fatal(err)
	}
	return model
}

func samples(n, dim int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, n)
	for i := range out {
		data := make([]float32, dim)
		for j := range data {
			data[j] = rng.Float32()
		}
		out[i] = tensor.MustFrom(data, dim)
	}
	return out
}

// A float32-backend replica must predict exactly what the manager's
// scheduled path predicts — plan compilation lowers and pre-transposes
// weights but cannot change float results.
func TestReplicaMatchesManagerPath(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	loadedQuantizedModel(t, m)

	rep, err := m.NewReplicaBackend("q-net", plan.Float32)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend() != "float32" {
		t.Fatalf("backend = %q, want float32", rep.Backend())
	}
	xs := samples(13, 8, 5)
	got, err := rep.InferBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.InferBatch("q-net", xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Classes) != 13 || len(want.Classes) != 13 {
		t.Fatalf("batch sizes: replica %d, manager %d", len(got.Classes), len(want.Classes))
	}
	for i := range got.Classes {
		if got.Classes[i] != want.Classes[i] {
			t.Errorf("sample %d: replica class %d, manager class %d", i, got.Classes[i], want.Classes[i])
		}
		if diff := got.Confidences[i] - want.Confidences[i]; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("sample %d: confidence %v vs %v", i, got.Confidences[i], want.Confidences[i])
		}
	}
}

// A quantized-loaded model's default replica runs the genuine int8
// backend: classes agree with the float reference and confidences stay
// within quantization tolerance — but the execution is a different
// kernel set, observable through Backend().
func TestQuantizedReplicaRunsInt8Backend(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	loadedQuantizedModel(t, m)

	rep, err := m.NewReplica("q-net")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend() != "int8" {
		t.Fatalf("quantized replica backend = %q, want int8", rep.Backend())
	}
	xs := samples(13, 8, 5)
	got, err := rep.InferBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.InferBatch("q-net", xs)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range got.Classes {
		if got.Classes[i] == want.Classes[i] {
			agree++
		}
		if diff := got.Confidences[i] - want.Confidences[i]; diff > 0.05 || diff < -0.05 {
			t.Errorf("sample %d: int8 confidence %v vs float %v", i, got.Confidences[i], want.Confidences[i])
		}
	}
	// Untrained random logits sit close together, so allow an isolated
	// near-tie flip; systematic disagreement means a broken kernel.
	if agree < len(got.Classes)-1 {
		t.Errorf("int8 replica agrees on %d/%d classes", agree, len(got.Classes))
	}
}

// An unknown backend must error, not silently fall back to a different
// kernel set than the caller asked for.
func TestNewReplicaBackendRejectsUnknown(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	loadedQuantizedModel(t, m)
	if _, err := m.NewReplicaBackend("q-net", "int4"); !errors.Is(err, plan.ErrBadBackend) {
		t.Fatalf("bogus backend err = %v, want plan.ErrBadBackend", err)
	}
}

// On-edge training invalidates the int8 weight artifacts, so replicas
// compiled afterwards quantize the weights that were actually learned
// instead of serving the stale pre-training kernels.
func TestTrainingInvalidatesInt8Artifacts(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	loadedQuantizedModel(t, m)
	loadedModel, err := m.Model("q-net")
	if err != nil {
		t.Fatal(err)
	}
	if loadedModel.Layers[0].(*nn.Dense).QW == nil {
		t.Fatal("quantized load did not install the dense artifact")
	}
	x := tensor.New(16, 8)
	x.Rand(rand.New(rand.NewSource(3)), 1)
	data := nn.Dataset{X: x, Y: make([]int, 16)}
	if _, _, err := m.Train("q-net", data, nn.TrainConfig{
		Epochs: 1, BatchSize: 8, LR: 0.05, Rand: rand.New(rand.NewSource(4)),
	}); err != nil {
		t.Fatal(err)
	}
	if loadedModel.Layers[0].(*nn.Dense).QW != nil {
		t.Fatal("training left a stale int8 artifact installed")
	}
	// Replicas built after training still take the int8 backend (the
	// load was quantized) but quantize the trained weights.
	rep, err := m.NewReplica("q-net")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend() != "int8" {
		t.Fatalf("post-training replica backend = %q, want int8", rep.Backend())
	}
}

// Models the plan IR cannot lower fall back to the frozen layer walk —
// and, since freezing expands int8 artifacts back to float, the fallback
// replica's cost model must describe float execution, not the quantized
// representation it no longer holds.
func TestUnsupportedModelFallsBackToLayerWalk(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	model, err := nn.NewModel("rnn-net", []int{24}, []nn.LayerSpec{
		{Type: "fastgrnn", RNN: &nn.RNNSpec{D: 6, H: 8, T: 4}},
		{Type: "dense", In: 8, Out: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	model.InitParams(rand.New(rand.NewSource(21)))
	if err := m.Load(model, LoadOptions{Quantize: true}); err != nil {
		t.Fatal(err)
	}
	rep, err := m.NewReplica("rnn-net")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend() != "layer-walk" {
		t.Fatalf("unsupported model backend = %q, want layer-walk", rep.Backend())
	}
	res, err := rep.InferBatch(samples(3, 24, 22))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 3 {
		t.Fatalf("got %d classes, want 3", len(res.Classes))
	}
	// The frozen walk executes float kernels on expanded weights: its
	// modelled latency must match a float workload of the frozen clone,
	// not an int8 one.
	w := m.workload(rep.model, false, 1)
	w.FLOPs *= 3
	w.ActivationBytes *= 3
	wantLat, err := m.dev.Latency(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelLatency != wantLat {
		t.Errorf("fallback modelled latency %v, want float-costed %v", res.ModelLatency, wantLat)
	}
}

// The replica is a snapshot: unloading the manager's copy does not break it.
func TestReplicaSurvivesUnload(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	loadedQuantizedModel(t, m)
	rep, err := m.NewReplica("q-net")
	if err != nil {
		t.Fatal(err)
	}
	m.Unload("q-net")
	if _, err := rep.InferBatch(samples(2, 8, 6)); err != nil {
		t.Errorf("replica after unload: %v", err)
	}
	if _, err := m.NewReplica("q-net"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("NewReplica after unload err = %v", err)
	}
}

func TestInferBatchErrors(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	if _, err := m.InferBatch("nope", samples(1, 8, 7)); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model err = %v", err)
	}
	loadedQuantizedModel(t, m)
	if _, err := m.InferBatch("q-net", nil); err == nil {
		t.Error("empty batch should error")
	}
	mixed := []*tensor.Tensor{tensor.New(8), tensor.New(4)}
	if _, err := m.InferBatch("q-net", mixed); err == nil {
		t.Error("mismatched sample shapes should error")
	}
}
