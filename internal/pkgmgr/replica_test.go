package pkgmgr

import (
	"errors"
	"math/rand"
	"testing"

	"openei/internal/nn"
	"openei/internal/plan"
	"openei/internal/tensor"
)

func loadedQuantizedModel(t *testing.T, m *Manager) *nn.Model {
	t.Helper()
	model := nn.MustModel("q-net", []int{8}, []nn.LayerSpec{
		{Type: "dense", In: 8, Out: 16},
		{Type: "relu"},
		{Type: "dense", In: 16, Out: 3},
	})
	model.InitParams(rand.New(rand.NewSource(11)))
	if err := m.Load(model, LoadOptions{Quantize: true}); err != nil {
		t.Fatal(err)
	}
	return model
}

func samples(n, dim int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, n)
	for i := range out {
		data := make([]float32, dim)
		for j := range data {
			data[j] = rng.Float32()
		}
		out[i] = tensor.MustFrom(data, dim)
	}
	return out
}

// A float32-backend replica must predict exactly what the manager's
// scheduled path predicts — plan compilation lowers and pre-transposes
// weights but cannot change float results.
func TestReplicaMatchesManagerPath(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	loadedQuantizedModel(t, m)

	rep, err := m.NewReplicaBackend("q-net", plan.Float32)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend() != "float32" {
		t.Fatalf("backend = %q, want float32", rep.Backend())
	}
	xs := samples(13, 8, 5)
	got, err := rep.InferBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.InferBatch("q-net", xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Classes) != 13 || len(want.Classes) != 13 {
		t.Fatalf("batch sizes: replica %d, manager %d", len(got.Classes), len(want.Classes))
	}
	for i := range got.Classes {
		if got.Classes[i] != want.Classes[i] {
			t.Errorf("sample %d: replica class %d, manager class %d", i, got.Classes[i], want.Classes[i])
		}
		if diff := got.Confidences[i] - want.Confidences[i]; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("sample %d: confidence %v vs %v", i, got.Confidences[i], want.Confidences[i])
		}
	}
}

// A quantized-loaded model's default replica runs the genuine int8
// backend: classes agree with the float reference and confidences stay
// within quantization tolerance — but the execution is a different
// kernel set, observable through Backend().
func TestQuantizedReplicaRunsInt8Backend(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	loadedQuantizedModel(t, m)

	rep, err := m.NewReplica("q-net")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend() != "int8" {
		t.Fatalf("quantized replica backend = %q, want int8", rep.Backend())
	}
	xs := samples(13, 8, 5)
	got, err := rep.InferBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.InferBatch("q-net", xs)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range got.Classes {
		if got.Classes[i] == want.Classes[i] {
			agree++
		}
		if diff := got.Confidences[i] - want.Confidences[i]; diff > 0.05 || diff < -0.05 {
			t.Errorf("sample %d: int8 confidence %v vs float %v", i, got.Confidences[i], want.Confidences[i])
		}
	}
	// Untrained random logits sit close together, so allow an isolated
	// near-tie flip; systematic disagreement means a broken kernel.
	if agree < len(got.Classes)-1 {
		t.Errorf("int8 replica agrees on %d/%d classes", agree, len(got.Classes))
	}
}

// An unknown backend must error, not silently fall back to a different
// kernel set than the caller asked for.
func TestNewReplicaBackendRejectsUnknown(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	loadedQuantizedModel(t, m)
	if _, err := m.NewReplicaBackend("q-net", "int2"); !errors.Is(err, plan.ErrBadBackend) {
		t.Fatalf("bogus backend err = %v, want plan.ErrBadBackend", err)
	}
}

// On-edge training invalidates the int8 weight artifacts, so replicas
// compiled afterwards quantize the weights that were actually learned
// instead of serving the stale pre-training kernels.
func TestTrainingInvalidatesInt8Artifacts(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	loadedQuantizedModel(t, m)
	loadedModel, err := m.Model("q-net")
	if err != nil {
		t.Fatal(err)
	}
	if loadedModel.Layers[0].(*nn.Dense).QW == nil {
		t.Fatal("quantized load did not install the dense artifact")
	}
	x := tensor.New(16, 8)
	x.Rand(rand.New(rand.NewSource(3)), 1)
	data := nn.Dataset{X: x, Y: make([]int, 16)}
	if _, _, err := m.Train("q-net", data, nn.TrainConfig{
		Epochs: 1, BatchSize: 8, LR: 0.05, Rand: rand.New(rand.NewSource(4)),
	}); err != nil {
		t.Fatal(err)
	}
	if loadedModel.Layers[0].(*nn.Dense).QW != nil {
		t.Fatal("training left a stale int8 artifact installed")
	}
	// Replicas built after training still take the int8 backend (the
	// load was quantized) but quantize the trained weights.
	rep, err := m.NewReplica("q-net")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend() != "int8" {
		t.Fatalf("post-training replica backend = %q, want int8", rep.Backend())
	}
}

// Recurrent stacks compile to a first-class plan (the layer-walk fallback
// is gone): the replica reports a real backend, supports the early-exit
// knob, and surfaces per-sample step counts. With early exit enabled, the
// modelled cost scales with the steps actually consumed.
func TestRecurrentReplicaRunsCompiledPlan(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	model, err := nn.NewModel("rnn-net", []int{24}, []nn.LayerSpec{
		{Type: "fastgrnn", RNN: &nn.RNNSpec{D: 6, H: 8, T: 4}},
		{Type: "dense", In: 8, Out: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	model.InitParams(rand.New(rand.NewSource(21)))
	if err := m.Load(model, LoadOptions{Quantize: true}); err != nil {
		t.Fatal(err)
	}
	rep, err := m.NewReplica("rnn-net")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend() == "layer-walk" {
		t.Fatalf("recurrent replica still reports the layer-walk fallback")
	}
	if !rep.SupportsEarlyExit() || rep.RNNSteps() != 4 {
		t.Fatalf("early-exit capability: supports=%v steps=%d, want true/4", rep.SupportsEarlyExit(), rep.RNNSteps())
	}
	res, err := rep.InferBatch(samples(3, 24, 22))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 3 {
		t.Fatalf("got %d classes, want 3", len(res.Classes))
	}
	if res.TotalSteps != 4 {
		t.Fatalf("TotalSteps = %d, want 4", res.TotalSteps)
	}
	fullLat := res.ModelLatency
	for i, s := range res.Steps {
		if s != 4 {
			t.Fatalf("sample %d used %d steps with early exit disabled, want 4", i, s)
		}
	}

	// Enable an always-exit threshold: untrained logits hover near
	// uniform (1/3), so every sample retires at step 1 and the modelled
	// latency drops below the full-window cost.
	rep.SetExitThreshold(0.2)
	if rep.ExitThreshold() != 0.2 {
		t.Fatalf("ExitThreshold = %v, want 0.2", rep.ExitThreshold())
	}
	res, err = rep.InferBatch(samples(3, 24, 22))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Steps {
		if s != 1 {
			t.Fatalf("sample %d used %d steps at threshold 0.2, want 1", i, s)
		}
	}
	if res.ModelLatency >= fullLat {
		t.Errorf("early-exit modelled latency %v did not drop below full-window %v", res.ModelLatency, fullLat)
	}
}

// The replica is a snapshot: unloading the manager's copy does not break it.
func TestReplicaSurvivesUnload(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	loadedQuantizedModel(t, m)
	rep, err := m.NewReplica("q-net")
	if err != nil {
		t.Fatal(err)
	}
	m.Unload("q-net")
	if _, err := rep.InferBatch(samples(2, 8, 6)); err != nil {
		t.Errorf("replica after unload: %v", err)
	}
	if _, err := m.NewReplica("q-net"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("NewReplica after unload err = %v", err)
	}
}

func TestInferBatchErrors(t *testing.T) {
	m := testManager(t, "eipkg", "rpi4")
	if _, err := m.InferBatch("nope", samples(1, 8, 7)); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model err = %v", err)
	}
	loadedQuantizedModel(t, m)
	if _, err := m.InferBatch("q-net", nil); err == nil {
		t.Error("empty batch should error")
	}
	mixed := []*tensor.Tensor{tensor.New(8), tensor.New(4)}
	if _, err := m.InferBatch("q-net", mixed); err == nil {
		t.Error("mismatched sample shapes should error")
	}
}
