package pkgmgr

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/dataset"
	"openei/internal/hardware"
	"openei/internal/nn"
)

func testManager(t *testing.T, pkgName, devName string) *Manager {
	t.Helper()
	pkg, err := alem.PackageByName(pkgName)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName(devName)
	if err != nil {
		t.Fatal(err)
	}
	m := New(pkg, dev)
	t.Cleanup(m.Close)
	return m
}

func trainedModel(t *testing.T) (*nn.Model, nn.Dataset, nn.Dataset) {
	t.Helper()
	cfg := dataset.PowerConfig{Samples: 400, Window: 32, Noise: 0.08, Seed: 40}
	train, test, err := dataset.Power(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	m := nn.MustModel("power-net", []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: 32},
		{Type: "relu"},
		{Type: "dense", In: 32, Out: 5},
	})
	m.InitParams(rng)
	if _, _, err := nn.Train(m, train, nn.TrainConfig{Epochs: 10, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	return m, train, test
}

func TestSchedulerPriorityOrder(t *testing.T) {
	s := NewScheduler()
	defer s.Close()

	// Block the worker so submissions queue up.
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := s.SubmitAsync(PriorityNormal, func() {
		close(started)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	var order []string
	var mu sync.Mutex
	record := func(tag string) func() {
		return func() {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}
	}
	d1, err := s.SubmitAsync(PriorityBatch, record("batch"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.SubmitAsync(PriorityNormal, record("normal"))
	if err != nil {
		t.Fatal(err)
	}
	d3, err := s.SubmitAsync(PriorityRealTime, record("rt1"))
	if err != nil {
		t.Fatal(err)
	}
	d4, err := s.SubmitAsync(PriorityRealTime, record("rt2"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Pending(); got != 4 {
		t.Errorf("Pending = %d, want 4", got)
	}
	close(release)
	for _, d := range []<-chan struct{}{d1, d2, d3, d4} {
		<-d
	}
	want := []string{"rt1", "rt2", "normal", "batch"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerCloseDrainsAndRejects(t *testing.T) {
	s := NewScheduler()
	var ran atomic.Int32
	for i := 0; i < 20; i++ {
		if _, err := s.SubmitAsync(PriorityNormal, func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if got := ran.Load(); got != 20 {
		t.Errorf("Close drained %d of 20 jobs", got)
	}
	if err := s.Submit(PriorityNormal, func() {}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestLoadInferUnload(t *testing.T) {
	mgr := testManager(t, "eipkg", "rpi4")
	model, _, test := trainedModel(t)
	if err := mgr.Load(model, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Models(); len(got) != 1 || got[0] != "power-net" {
		t.Errorf("Models = %v", got)
	}
	res, err := mgr.Infer("power-net", test.X)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != test.Samples() {
		t.Errorf("got %d predictions for %d samples", len(res.Classes), test.Samples())
	}
	if res.ModelLatency <= 0 || res.ModelEnergy <= 0 {
		t.Errorf("cost model missing: %+v", res)
	}
	correct := 0
	for i, c := range res.Classes {
		if c == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(res.Classes)); acc < 0.7 {
		t.Errorf("inference accuracy = %v", acc)
	}
	mgr.Unload("power-net")
	if _, err := mgr.Infer("power-net", test.X); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("infer after unload: err = %v, want ErrUnknownModel", err)
	}
}

func TestLoadClonesModel(t *testing.T) {
	mgr := testManager(t, "eipkg", "laptop")
	model, _, _ := trainedModel(t)
	if err := mgr.Load(model, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's model must not affect the loaded copy.
	before, err := mgr.Model("power-net")
	if err != nil {
		t.Fatal(err)
	}
	w0 := before.Params()[0].At(0, 0)
	model.Params()[0].Fill(999)
	after, err := mgr.Model("power-net")
	if err != nil {
		t.Fatal(err)
	}
	if after.Params()[0].At(0, 0) != w0 {
		t.Error("Load did not clone the model")
	}
}

func TestLoadRejectsOversizedModel(t *testing.T) {
	mgr := testManager(t, "eipkg", "arduino-uno")
	model, _, _ := trainedModel(t)
	if err := mgr.Load(model, LoadOptions{}); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("load on MCU: err = %v, want ErrNoCapacity", err)
	}
}

func TestQuantizedLoadFasterAndStillAccurate(t *testing.T) {
	model, _, test := trainedModel(t)
	mgr := testManager(t, "eipkg", "rpi4")
	if err := mgr.Load(model, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	rf, err := mgr.Infer("power-net", test.X)
	if err != nil {
		t.Fatal(err)
	}
	mgrQ := testManager(t, "eipkg", "rpi4")
	if err := mgrQ.Load(model, LoadOptions{Quantize: true}); err != nil {
		t.Fatal(err)
	}
	rq, err := mgrQ.Infer("power-net", test.X)
	if err != nil {
		t.Fatal(err)
	}
	if rq.ModelLatency >= rf.ModelLatency {
		t.Errorf("quantized modelled latency %v not below float %v", rq.ModelLatency, rf.ModelLatency)
	}
	correct := 0
	for i, c := range rq.Classes {
		if c == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(rq.Classes)); acc < 0.65 {
		t.Errorf("quantized accuracy = %v", acc)
	}
}

func TestInferWithDeadline(t *testing.T) {
	mgr := testManager(t, "eipkg", "rpi3")
	model, _, test := trainedModel(t)
	if err := mgr.Load(model, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	// A generous deadline admits the job.
	if _, err := mgr.InferWithDeadline("power-net", test.X, time.Second); err != nil {
		t.Errorf("generous deadline rejected: %v", err)
	}
	// An impossible deadline is rejected up front.
	if _, err := mgr.InferWithDeadline("power-net", test.X, time.Nanosecond); !errors.Is(err, ErrDeadline) {
		t.Errorf("impossible deadline: err = %v, want ErrDeadline", err)
	}
}

func TestTrainRequiresTrainingSupport(t *testing.T) {
	mgr := testManager(t, "tflite-m", "rpi4") // inference-only package
	model, train, _ := trainedModel(t)
	if err := mgr.Load(model, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if _, _, err := mgr.Train("power-net", train, nn.TrainConfig{Epochs: 1, Rand: rng}); !errors.Is(err, ErrNoTraining) {
		t.Errorf("train on tflite-m: err = %v, want ErrNoTraining", err)
	}
	if err := mgr.TransferLearn("power-net", train, 1, 1, rng); !errors.Is(err, ErrNoTraining) {
		t.Errorf("transfer-learn on tflite-m: err = %v, want ErrNoTraining", err)
	}
}

func TestTransferLearnPersonalizes(t *testing.T) {
	// Train a generic model, then present shifted "personal" data
	// (Dataflow 3): transfer learning must improve accuracy on it.
	mgr := testManager(t, "eipkg", "rpi4")
	genericCfg := dataset.ActivityConfig{Samples: 600, Window: 16, Noise: 0.15, Seed: 50}
	genTrain, _, err := dataset.Activity(genericCfg)
	if err != nil {
		t.Fatal(err)
	}
	personalCfg := genericCfg
	personalCfg.Seed = 51
	personalCfg.Bias = 0.7
	perTrain, perTest, err := dataset.Activity(personalCfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	model := nn.MustModel("activity-net", []int{48}, []nn.LayerSpec{
		{Type: "dense", In: 48, Out: 32},
		{Type: "relu"},
		{Type: "dense", In: 32, Out: 4},
	})
	model.InitParams(rng)
	if _, _, err := nn.Train(model, genTrain, nn.TrainConfig{Epochs: 10, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Load(model, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	resBefore, err := mgr.Infer("activity-net", perTest.X)
	if err != nil {
		t.Fatal(err)
	}
	accBefore := accuracy(resBefore.Classes, perTest.Y)

	if err := mgr.TransferLearn("activity-net", perTrain, 1, 8, rng); err != nil {
		t.Fatal(err)
	}
	resAfter, err := mgr.Infer("activity-net", perTest.X)
	if err != nil {
		t.Fatal(err)
	}
	accAfter := accuracy(resAfter.Classes, perTest.Y)
	if accAfter <= accBefore {
		t.Errorf("transfer learning did not personalize: %v -> %v", accBefore, accAfter)
	}
}

func accuracy(pred, want []int) float64 {
	correct := 0
	for i := range pred {
		if pred[i] == want[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

func TestSnapshotRoundTrips(t *testing.T) {
	mgr := testManager(t, "eipkg", "laptop")
	model, _, test := trainedModel(t)
	if err := mgr.Load(model, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	data, err := mgr.Snapshot("power-net")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := nn.DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := nn.Accuracy(m2, test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Errorf("snapshot accuracy = %v", acc)
	}
	if _, err := mgr.Snapshot("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("snapshot unknown: err = %v", err)
	}
}

func TestALEMOf(t *testing.T) {
	mgr := testManager(t, "eipkg", "rpi3")
	model, _, _ := trainedModel(t)
	if err := mgr.Load(model, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	a, err := mgr.ALEMOf("power-net")
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency <= 0 || a.Energy <= 0 || a.Memory <= 0 {
		t.Errorf("ALEMOf = %v", a)
	}
	if _, err := mgr.ALEMOf("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model: err = %v", err)
	}
}

func TestConcurrentInference(t *testing.T) {
	mgr := testManager(t, "eipkg", "edge-server")
	model, _, test := trainedModel(t)
	if err := mgr.Load(model, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	small, err := nn.Dataset{X: test.X, Y: test.Y}.Slice(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if i%3 == 0 {
				_, err = mgr.InferUrgent("power-net", small.X)
			} else {
				_, err = mgr.Infer("power-net", small.X)
			}
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPriorityString(t *testing.T) {
	for p, want := range map[Priority]string{
		PriorityBatch: "batch", PriorityNormal: "normal", PriorityRealTime: "realtime",
		Priority(9): "priority(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("Priority(%d).String() = %q, want %q", p, got, want)
		}
	}
}
