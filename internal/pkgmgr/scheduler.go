// Package pkgmgr implements the paper's package manager (§III.B): the
// lightweight runtime installed on the edge OS that loads models, executes
// inference under a chosen package profile, supports local (transfer)
// training — the capability the paper adds over TensorFlow Lite — and
// contains the real-time machine-learning module that gives urgent tasks
// "as many computing resources as possible" via priority scheduling with
// deadline admission control.
package pkgmgr

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
)

// Scheduler errors.
var (
	// ErrClosed is returned when submitting to a closed scheduler.
	ErrClosed = errors.New("pkgmgr: scheduler closed")
)

// Priority orders jobs in the real-time ML module; higher runs first.
type Priority int

// Priorities, lowest to highest.
const (
	PriorityBatch Priority = iota + 1
	PriorityNormal
	PriorityRealTime
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityBatch:
		return "batch"
	case PriorityNormal:
		return "normal"
	case PriorityRealTime:
		return "realtime"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// job is one unit of queued work.
type job struct {
	prio Priority
	seq  uint64 // FIFO within a priority level
	run  func()
	done chan struct{}
}

// jobQueue is a max-heap on (priority, -seq).
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio > q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x interface{}) { *q = append(*q, x.(*job)) }
func (q *jobQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Scheduler serializes model execution on the (single) accelerator of a
// constrained edge, draining jobs strictly in priority order. It is the
// real-time ML module's core: a PriorityRealTime job always runs before any
// queued lower-priority work.
type Scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  jobQueue
	seq    uint64
	closed bool
	idle   bool
	wg     sync.WaitGroup
}

// NewScheduler starts the worker goroutine; callers must Close it.
func NewScheduler() *Scheduler {
	s := &Scheduler{}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *Scheduler) loop() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.idle = true
			s.cond.Wait()
		}
		s.idle = false
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*job)
		s.mu.Unlock()
		j.run()
		close(j.done)
	}
}

// Submit enqueues fn at the given priority and blocks until it has run.
func (s *Scheduler) Submit(prio Priority, fn func()) error {
	done, err := s.SubmitAsync(prio, fn)
	if err != nil {
		return err
	}
	<-done
	return nil
}

// SubmitAsync enqueues fn and returns a channel closed when it completes.
func (s *Scheduler) SubmitAsync(prio Priority, fn func()) (<-chan struct{}, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.seq++
	j := &job{prio: prio, seq: s.seq, run: fn, done: make(chan struct{})}
	heap.Push(&s.queue, j)
	s.mu.Unlock()
	s.cond.Signal()
	return j.done, nil
}

// Pending returns the number of queued (not yet started) jobs.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Close stops accepting jobs, waits for queued work to drain, and stops the
// worker. It is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}
