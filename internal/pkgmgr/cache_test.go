package pkgmgr

import (
	"sync"
	"testing"
	"time"

	"openei/internal/tensor"
)

// cachedFixture loads the trained power model and returns the manager
// plus one test input.
func cachedFixture(t *testing.T) (*Manager, *tensor.Tensor) {
	t.Helper()
	m := testManager(t, "eipkg", "rpi4")
	model, _, test := trainedModel(t)
	if err := m.Load(model, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	x, err := tensor.NewFrom(append([]float32(nil), test.X.Data()[:32]...), 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	return m, x
}

func TestResultCacheHitSkipsInference(t *testing.T) {
	m, x := cachedFixture(t)
	c := NewResultCache(8, 0)

	r1, hit, err := c.Infer(m, "power-net", x)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first call reported a hit")
	}
	r2, hit, err := c.Infer(m, "power-net", x)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("identical input missed the cache")
	}
	if r1.Classes[0] != r2.Classes[0] || r1.Confidences[0] != r2.Confidences[0] {
		t.Fatalf("cached result differs: %+v vs %+v", r1, r2)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestResultCacheDistinguishesInputs(t *testing.T) {
	m, x := cachedFixture(t)
	c := NewResultCache(8, 0)

	if _, _, err := c.Infer(m, "power-net", x); err != nil {
		t.Fatal(err)
	}
	y := x.Clone()
	y.Data()[0] += 0.25
	_, hit, err := c.Infer(m, "power-net", y)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("different input hit the cache")
	}
	// Different model name must also miss, even with identical input.
	model, _, _ := trainedModel(t)
	model.Name = "power-net-2"
	if err := m.Load(model, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, hit, err = c.Infer(m, "power-net-2", x); err != nil || hit {
		t.Fatalf("cross-model hit=%v err=%v", hit, err)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	m, x := cachedFixture(t)
	c := NewResultCache(2, 0)

	variant := func(i int) *tensor.Tensor {
		v := x.Clone()
		v.Data()[0] = float32(i)
		return v
	}
	for i := 0; i < 3; i++ { // third insert evicts the first
		if _, _, err := c.Infer(m, "power-net", variant(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if _, hit, _ := c.Infer(m, "power-net", variant(0)); hit {
		t.Fatal("evicted entry still hit")
	}
	if _, hit, _ := c.Infer(m, "power-net", variant(2)); !hit {
		t.Fatal("recent entry was evicted")
	}
}

func TestResultCacheTTLExpiry(t *testing.T) {
	m, x := cachedFixture(t)
	c := NewResultCache(8, time.Minute)
	now := time.Unix(1000, 0)
	c.nowFunc = func() time.Time { return now }

	if _, _, err := c.Infer(m, "power-net", x); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second)
	if _, hit, _ := c.Infer(m, "power-net", x); !hit {
		t.Fatal("fresh entry expired early")
	}
	now = now.Add(2 * time.Minute)
	if _, hit, _ := c.Infer(m, "power-net", x); hit {
		t.Fatal("stale entry served after TTL")
	}
	if st := c.Stats(); st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
}

func TestResultCachePurge(t *testing.T) {
	m, x := cachedFixture(t)
	c := NewResultCache(8, 0)
	if _, _, err := c.Infer(m, "power-net", x); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
	if _, hit, _ := c.Infer(m, "power-net", x); hit {
		t.Fatal("hit after purge")
	}
}

func TestResultCacheErrorNotCached(t *testing.T) {
	m, x := cachedFixture(t)
	c := NewResultCache(8, 0)
	if _, _, err := c.Infer(m, "no-such-model", x); err == nil {
		t.Fatal("want error for unknown model")
	}
	if c.Len() != 0 {
		t.Fatal("error result was cached")
	}
}

func TestResultCacheConcurrentInfer(t *testing.T) {
	m, x := cachedFixture(t)
	c := NewResultCache(8, 0)
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, _, err := c.Infer(m, "power-net", x); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (single distinct input)", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8*20 {
		t.Fatalf("hits %d + misses %d != 160", st.Hits, st.Misses)
	}
}

// TestResultCacheStampedeSameKey releases every goroutine at once
// against a single cold key — the thundering-herd shape. The cache has
// no single-flight, so several goroutines may each run the inference,
// but they must all get the same answer, the stats must add up, and
// exactly one entry may remain.
func TestResultCacheStampedeSameKey(t *testing.T) {
	m, x := cachedFixture(t)
	c := NewResultCache(8, 0)

	const herd = 16
	start := make(chan struct{})
	results := make(chan InferenceResult, herd)
	errCh := make(chan error, herd)
	var wg sync.WaitGroup
	for g := 0; g < herd; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, _, err := c.Infer(m, "power-net", x)
			if err != nil {
				errCh <- err
				return
			}
			results <- res
		}()
	}
	close(start)
	wg.Wait()
	close(errCh)
	close(results)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	var first *InferenceResult
	for res := range results {
		if first == nil {
			r := res
			first = &r
			continue
		}
		if res.Classes[0] != first.Classes[0] || res.Confidences[0] != first.Confidences[0] {
			t.Fatalf("stampede answers diverge: %+v vs %+v", res, *first)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (one key)", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses != herd {
		t.Fatalf("hits %d + misses %d != %d", st.Hits, st.Misses, herd)
	}
	if st.Misses < 1 {
		t.Fatalf("misses = %d, want ≥1 for a cold key", st.Misses)
	}
	if st.Evictions != 0 {
		t.Fatalf("evictions = %d on a same-key stampede", st.Evictions)
	}
	// The herd warmed the cache: the next caller must hit.
	if _, hit, err := c.Infer(m, "power-net", x); err != nil || !hit {
		t.Fatalf("post-stampede lookup hit=%v err=%v", hit, err)
	}
}

func TestHashTensorShapeSensitive(t *testing.T) {
	a := tensor.MustFrom([]float32{1, 2, 3, 4}, 2, 2)
	b := tensor.MustFrom([]float32{1, 2, 3, 4}, 1, 4)
	if hashTensor(a) == hashTensor(b) {
		t.Fatal("hash ignores shape")
	}
	if hashTensor(a) != hashTensor(a.Clone()) {
		t.Fatal("hash not deterministic")
	}
}
