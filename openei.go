// Package openei is the public façade of the OpenEI reproduction: a
// lightweight software platform that equips an edge with intelligent
// processing and data-sharing capability (Zhang et al., "OpenEI: An Open
// Framework for Edge Intelligence", ICDCS 2019).
//
// The paper's "deploy and play" promise is the New function: point it at a
// device profile and you get a Node with the three OpenEI components wired
// together —
//
//   - a package manager (inference, local/transfer training, real-time ML),
//   - a model selector (the ALEM-constrained optimizer of Equation 1),
//   - libei (the RESTful API of Figure 6) over the node's datastore,
//   - a serving engine that coalesces concurrent inference requests into
//     micro-batches and runs them on a pool of model replicas.
//
// A minimal deployment:
//
//	node, err := openei.New(openei.Config{NodeID: "kitchen-pi", Device: "rpi3"})
//	...
//	defer node.Close()
//	http.ListenAndServe(":8080", node.Handler())
//
// # Serving knobs
//
// Config.Serving tunes the inference serving path (Node.ServeInfer and the
// /ei_algorithms/serving/infer route):
//
//   - MaxBatch — largest micro-batch assembled per dispatch (default 8);
//   - MaxWait — how long the first request waits for stragglers before the
//     batch is dispatched anyway (default 2ms);
//   - Replicas — model clones executing batches concurrently (default 2);
//   - QueueDepth — bounded per-model queue; a full queue rejects
//     immediately with ErrOverloaded, which libei maps to HTTP 429
//     (default 64);
//   - Procs — width of the process-wide parallel kernel pool that every
//     dense kernel (matmul, convolution, pooling, activations) shards
//     across (0 = all cores);
//   - ParallelGrain — the pool's serial cutoff in fused-op units; kernels
//     below it run on the submitting goroutine so tiny tensors skip
//     dispatch overhead (0 = library default);
//   - Tenants / DefaultTenant — multi-tenant admission and scheduling:
//     each TenantConfig declares a strict priority tier, a weighted fair
//     share within the tier, and an optional token-bucket rate; requests
//     carry their class via the infer route's &tenant= parameter (or
//     WithTenant in-process) and shed with HTTP 429 when their bucket or
//     the queue is exhausted, never starving a higher tier.
//
// Queue depth, batch sizes, latency counters, per-tenant counters, and
// kernel-pool utilization are exposed at GET /ei_metrics. Serving replicas additionally run a
// zero-allocation inference path: activations live in per-replica arena
// allocators, so steady-state request handling does not touch the GC.
package openei

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"openei/internal/alem"
	"openei/internal/apps"
	"openei/internal/autopilot"
	"openei/internal/datastore"
	"openei/internal/hardware"
	"openei/internal/libei"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/plan"
	"openei/internal/runenv"
	"openei/internal/selector"
	"openei/internal/serving"
	"openei/internal/tensor"
)

// Re-exported types so downstream users can name the values flowing through
// the public API (the implementations live in internal packages).
type (
	// ALEM is the paper's <Accuracy, Latency, Energy, Memory> capability tuple.
	ALEM = alem.ALEM
	// Package is a deep-learning runtime profile (the Figure 5 second axis).
	Package = alem.Package
	// Device is an edge hardware profile (the Figure 5 third axis).
	Device = hardware.Device
	// Model is a neural network runnable by the package manager.
	Model = nn.Model
	// Tensor is the dense input/output tensor type.
	Tensor = tensor.Tensor
	// Dataset is a labelled training/evaluation set.
	Dataset = nn.Dataset
	// Store is the node's sensor data store behind /ei_data.
	Store = datastore.Store
	// Manager is the node's package manager.
	Manager = pkgmgr.Manager
	// Server is the node's libei HTTP API.
	Server = libei.Server
	// Client talks to a remote node's libei API.
	Client = libei.Client
	// Registration binds an algorithm into /ei_algorithms/{scenario}/{name}.
	Registration = libei.Registration
	// Requirements are the Equation 1 constraints for model selection.
	Requirements = selector.Requirements
	// Choice is a selected (model, package, device) point with its ALEM.
	Choice = selector.Choice
	// Candidate is a model artifact considered by the selector.
	Candidate = selector.Candidate
	// Bus is the ROS-style topic pub/sub bus of the running environment
	// (§IV.C).
	Bus = runenv.Bus
	// Scheduler is the TinyOS-style event-driven task scheduler (§IV.C).
	Scheduler = runenv.Scheduler
	// SchedulerTask is one run-to-completion unit for the Scheduler.
	SchedulerTask = runenv.Task
	// VCU allocates bounded shares of a device to applications
	// (OpenVDAP-style, §IV.C).
	VCU = runenv.VCU
	// VCURequest asks a VCU for a compute share and memory budget.
	VCURequest = runenv.Request
	// Monitor is the heartbeat failure detector for edge peers (§IV.C).
	Monitor = runenv.Monitor
	// Migrator moves computations off failed edges (§IV.C).
	Migrator = runenv.Migrator
	// ResultCache memoizes inference results (MUVR-style edge caching,
	// §V.C).
	ResultCache = pkgmgr.ResultCache
	// ServingEngine is the node's dynamic-batching inference engine:
	// per-model bounded queues, micro-batch coalescing, and a replica
	// pool, fronted by /ei_algorithms/serving/infer.
	ServingEngine = serving.Engine
	// ServingConfig tunes the serving engine (MaxBatch, MaxWait,
	// Replicas, QueueDepth); the zero value means defaults.
	ServingConfig = serving.Config
	// ServingResult is one request's share of a batched inference.
	ServingResult = serving.Result
	// ServingStats is the per-model counter snapshot behind /ei_metrics.
	ServingStats = serving.ModelStats
	// TenantConfig declares one admission/scheduling class of the
	// multi-tenant serving engine (ServingConfig.Tenants): a strict
	// priority tier, a weighted fair share within the tier, and an
	// optional token-bucket admission rate.
	TenantConfig = serving.TenantConfig
	// TenantStats is one tenant's serving counter snapshot (admitted,
	// shed, expired, served, latency percentiles) behind /ei_metrics.
	TenantStats = serving.TenantStats
	// AutopilotPolicy is the operator-declared SLO (p95 latency target,
	// accuracy floor, memory cap) plus the control loop's hysteresis
	// knobs; a zero P95 leaves the autopilot disabled.
	AutopilotPolicy = autopilot.Policy
	// AutopilotTier is one rung of the runtime tier ladder: a loaded
	// model variant with its profiled ALEM coordinates.
	AutopilotTier = autopilot.TierSpec
	// AutopilotStatus is the control loop's /ei_metrics snapshot.
	AutopilotStatus = autopilot.Status
	// AutopilotPilot is the running SLO control loop.
	AutopilotPilot = autopilot.Pilot
	// Offloader executes requests on the edge→cloud fallback tier.
	Offloader = autopilot.Offloader
	// Backend names a compiled-plan execution backend. Serving replicas
	// compile loaded models into execution plans (fused op graphs); the
	// backend decides the kernel set: BackendFloat32 reproduces the
	// full-precision path, BackendInt8 runs genuine int8 dense/conv
	// kernels with calibrated activation quantization, and BackendInt4
	// serves nibble-packed weights (≈⅛ the float bytes, per-channel
	// scales) on the same int8 kernels. Tier names imply backends: a
	// "{model}-int8" tier is an int8 plan, "{model}-int4" an int4 plan.
	Backend = plan.Backend
)

// Compiled-plan execution backends.
const (
	BackendFloat32 = plan.Float32
	BackendInt8    = plan.Int8
	BackendInt4    = plan.Int4
)

// Serving engine errors, surfaced by Node.ServeInfer and mapped by libei to
// HTTP statuses (429, 408).
var (
	ErrOverloaded    = serving.ErrOverloaded
	ErrServeDeadline = serving.ErrDeadline
	ErrServingClosed = serving.ErrClosed
	ErrServeBadInput = serving.ErrBadInput
)

// Scheduler task priorities: urgent tasks drain before normal ones (the
// real-time ML lane of §III.B).
const (
	TaskNormal = runenv.Normal
	TaskUrgent = runenv.Urgent
)

// Selection objectives (§III.C): minimize latency by default, or optimize
// another ALEM dimension with the rest as constraints.
const (
	MinLatency  = selector.MinLatency
	MaxAccuracy = selector.MaxAccuracy
	MinEnergy   = selector.MinEnergy
	MinMemory   = selector.MinMemory
)

// ErrBadConfig is returned by New for invalid configurations.
var ErrBadConfig = errors.New("openei: bad config")

// Config describes one OpenEI deployment.
type Config struct {
	// NodeID names this edge (required).
	NodeID string
	// Device is the hardware profile name (see Devices); required.
	Device string
	// Package is the runtime profile name; default "eipkg".
	Package string
	// DataWindow is the realtime window per sensor; default 64.
	DataWindow int
	// Serving tunes the inference serving engine (micro-batch size and
	// wait, replica count, queue depth). The zero value uses defaults;
	// see ServingConfig.
	Serving ServingConfig
	// Autopilot is the SLO policy for runtime tier switching and
	// edge→cloud offload. It takes effect when EnableAutopilot is called
	// (the tier ladder needs trained models); a zero P95 disables the
	// loop entirely.
	Autopilot AutopilotPolicy
}

// Node is a deployed OpenEI edge: datastore + package manager + serving
// engine + libei.
type Node struct {
	ID      string
	Store   *Store
	Manager *Manager
	Server  *Server
	// Serving batches concurrent inference requests across model
	// replicas; it backs /ei_algorithms/serving/infer and /ei_metrics.
	Serving *ServingEngine
	// Pilot is the SLO control loop, nil until EnableAutopilot.
	Pilot *AutopilotPilot

	device hardware.Device
	pkg    alem.Package
	slo    AutopilotPolicy
}

// New deploys OpenEI for the given configuration ("any hardware … will
// become an intelligent edge after deploying OpenEI").
func New(cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("%w: NodeID is required", ErrBadConfig)
	}
	dev, err := hardware.ByName(cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	pkgName := cfg.Package
	if pkgName == "" {
		pkgName = "eipkg"
	}
	pkg, err := alem.PackageByName(pkgName)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	store := datastore.New(cfg.DataWindow)
	mgr := pkgmgr.New(pkg, dev)
	srv := libei.NewServer(cfg.NodeID, store, mgr)
	eng := serving.NewEngine(mgr, cfg.Serving)
	srv.SetEngine(eng)
	return &Node{
		ID: cfg.NodeID, Store: store, Manager: mgr, Server: srv, Serving: eng,
		device: dev, pkg: pkg, slo: cfg.Autopilot,
	}, nil
}

// Close releases the node's resources (stops the autopilot, drains the
// serving engine, then stops the real-time scheduler).
func (n *Node) Close() {
	if n.Pilot != nil {
		n.Pilot.Close()
	}
	n.Serving.Close()
	n.Manager.Close()
}

// Handler returns the libei HTTP handler for serving.
func (n *Node) Handler() http.Handler { return n.Server }

// Device returns the node's hardware profile.
func (n *Node) Device() Device { return n.device }

// Package returns the node's runtime profile.
func (n *Node) Package() Package { return n.pkg }

// Register installs custom algorithms under /ei_algorithms.
func (n *Node) Register(regs ...Registration) error {
	return n.Server.RegisterAll(regs)
}

// LoadModel installs a model into the package manager; set quantize to
// install the int8 artifact when the package supports it — serving
// replicas of a quantized model compile to the int8 execution backend
// (real int8 kernels, not just smaller storage). Reloading under an
// existing name also resets that model's serving pipeline so replicas
// pick up the new weights.
func (n *Node) LoadModel(m *Model, quantize bool) error {
	if err := n.Manager.Load(m, pkgmgr.LoadOptions{Quantize: quantize}); err != nil {
		return err
	}
	n.Serving.Reset(m.Name)
	return nil
}

// LoadModelBackend is LoadModel with the serving backend named
// explicitly: BackendInt8 quantizes at load (the int8 artifact is what
// the backend executes), BackendInt4 keeps the float weights until plan
// compilation nibble-packs them, BackendFloat32 keeps full precision.
// It is the façade's backend knob; openei-server exposes it as -backend.
func (n *Node) LoadModelBackend(m *Model, backend Backend) error {
	switch backend {
	case BackendInt8, BackendInt4:
		if !n.pkg.SupportsInt8 {
			return fmt.Errorf("%w: package %s has no int8 kernels", ErrBadConfig, n.pkg.Name)
		}
		if err := n.Manager.Load(m, pkgmgr.LoadOptions{Backend: backend}); err != nil {
			return err
		}
		n.Serving.Reset(m.Name)
		return nil
	case BackendFloat32, "":
		return n.LoadModel(m, false)
	default:
		return fmt.Errorf("%w: unknown backend %q", ErrBadConfig, backend)
	}
}

// SelectModel runs the model selector over the node's own device: given
// trained candidate models and an evaluation set, it returns the best
// (model, package-variant) combination under the requirements — the
// processing-flow step of §III.E ("the model selector will choose a most
// suitable model … based on the developer's requirement and the current
// computing resource").
func (n *Node) SelectModel(models map[string]*Model, eval Dataset, req Requirements) (Choice, error) {
	prof := alem.NewProfiler(eval)
	cands := selector.Variants(models, n.pkg.SupportsInt8)
	return selector.Exhaustive(cands, []alem.Package{n.pkg}, []hardware.Device{n.device}, req, prof)
}

// DeployTiers runs the paper's Equation-1 machinery once at deploy time
// to build the autopilot's runtime tier ladder: every candidate model (and
// its int8 variant, when the package supports int8) is ALEM-profiled on
// this node's device, the Pareto frontier is computed, rungs violating the
// SLO policy's accuracy floor or memory cap are dropped, and each
// surviving variant is loaded into the package manager under its tier name
// ("{model}", "{model}-int8", or "{model}-int4"). The returned ladder
// (best accuracy first) is what EnableAutopilot switches across at
// runtime.
func (n *Node) DeployTiers(models map[string]*Model, eval Dataset, pol AutopilotPolicy) ([]AutopilotTier, error) {
	prof := alem.NewProfiler(eval)
	cands := selector.Variants(models, n.pkg.SupportsInt8)
	choices, err := selector.Table(cands, []alem.Package{n.pkg}, []hardware.Device{n.device}, prof)
	if err != nil {
		return nil, err
	}
	tiers := autopilot.PlanTiers(selector.Pareto(choices), nil, pol)
	if len(tiers) == 0 {
		return nil, fmt.Errorf("openei: no tier of %d candidates satisfies the SLO policy (floor %.3f)",
			len(models), pol.AccuracyFloor)
	}
	for _, t := range tiers {
		base := strings.TrimSuffix(strings.TrimSuffix(t.Model, "-int8"), "-int4")
		src, ok := models[base]
		if !ok {
			return nil, fmt.Errorf("openei: tier %q has no source model %q", t.Model, base)
		}
		clone, err := src.Clone()
		if err != nil {
			return nil, err
		}
		clone.Name = t.Model
		if err := n.LoadModelBackend(clone, Backend(t.Backend)); err != nil {
			return nil, err
		}
	}
	return tiers, nil
}

// EnableAutopilot starts the SLO control loop from Config.Autopilot over
// the given tier ladder (usually DeployTiers' result): the alias is the
// model name clients request, hot-swapped across tiers as the measured
// p95 crosses the SLO; off, when non-nil, is the edge→cloud fallback used
// once even the cheapest tier misses it (see NewRemoteOffloader). The
// pilot is wired into libei — /ei_algorithms/serving/infer dispatches
// through it and /ei_metrics gains the "autopilot" block.
func (n *Node) EnableAutopilot(alias string, tiers []AutopilotTier, off Offloader) (*AutopilotPilot, error) {
	if n.slo.P95 <= 0 {
		return nil, fmt.Errorf("%w: Config.Autopilot.P95 is zero (autopilot disabled)", ErrBadConfig)
	}
	p, err := autopilot.New(n.Serving, alias, tiers, n.slo, off)
	if err != nil {
		return nil, err
	}
	n.Server.SetAutopilot(p)
	p.Start()
	n.Pilot = p
	return p, nil
}

// NewRemoteOffloader returns an Offloader that executes requests against
// a remote serving endpoint (an openei-cloud -serve instance, a beefier
// edge, or a gateway); model, when non-empty, overrides the model name
// requested remotely.
func NewRemoteOffloader(baseURL, model string) Offloader {
	return &libei.RemoteOffloader{Client: libei.NewClient(baseURL), Model: model}
}

// DeploySelected loads the chosen model variant into the node.
func (n *Node) DeploySelected(models map[string]*Model, c Choice) error {
	m, ok := models[c.ModelName]
	if !ok {
		return fmt.Errorf("openei: selected model %q not in candidate set", c.ModelName)
	}
	return n.LoadModel(m, c.Quantized)
}

// EnableSafety registers the VAPS algorithms (Figure 4's public-safety
// URLs) against the given camera sensor and loaded model.
func (n *Node) EnableSafety(modelName, cameraID string, labels []string, firearmClass int) error {
	return n.Register(apps.Safety(apps.SafetyConfig{
		Store: n.Store, Manager: n.Manager, ModelName: modelName,
		DefaultCamera: cameraID, Labels: labels, FirearmClass: firearmClass,
	})...)
}

// EnableVehicles registers the CAV tracking algorithm.
func (n *Node) EnableVehicles(cameraID string, window int) error {
	return n.Register(apps.Vehicles(apps.VehiclesConfig{
		Store: n.Store, DefaultCamera: cameraID, Window: window,
	})...)
}

// EnableHome registers the smart-home power monitor.
func (n *Node) EnableHome(modelName, meterID string, labels []string) error {
	return n.Register(apps.Home(apps.HomeConfig{
		Store: n.Store, Manager: n.Manager, ModelName: modelName,
		DefaultMeter: meterID, Labels: labels,
	})...)
}

// EnableHealth registers the connected-health algorithms.
func (n *Node) EnableHealth(modelName, imuID string, labels []string, fallClass int) error {
	return n.Register(apps.Health(apps.HealthConfig{
		Store: n.Store, Manager: n.Manager, ModelName: modelName,
		DefaultIMU: imuID, Labels: labels, FallClass: fallClass,
	})...)
}

// EnableMask registers the §V.A privacy-masking algorithm
// (/ei_algorithms/safety/mask): the subject region of the camera frame
// is blanked so the frame can leave the edge without private content.
func (n *Node) EnableMask(cameraID string) error {
	return n.Register(apps.Mask(apps.MaskConfig{
		Store: n.Store, DefaultCamera: cameraID,
	})...)
}

// NewBus returns a running-environment pub/sub bus (§IV.C).
func NewBus() *Bus { return runenv.NewBus() }

// NewScheduler returns a running event-driven scheduler with the given
// queue capacity (≤0 means 256). Call Close to join its worker.
func NewScheduler(queueCap int) *Scheduler { return runenv.NewScheduler(queueCap) }

// NewVCU returns a resource allocator over the given device.
func NewVCU(d Device) *VCU { return runenv.NewVCU(d) }

// AttachVCU exposes the allocator's state through GET /ei_resources —
// the paper's "every resource, including the … computing resource …
// [is] represented by a URL".
func (n *Node) AttachVCU(v *VCU) { n.Server.SetVCU(v) }

// NewMonitor returns a heartbeat failure detector with the given silence
// timeout (≤0 means 3 s).
func NewMonitor(timeout time.Duration) *Monitor { return runenv.NewMonitor(timeout) }

// NewMigrator returns a computation migrator over node capacities
// (node → effective FLOPS).
func NewMigrator(capacity map[string]float64) *Migrator { return runenv.NewMigrator(capacity) }

// NewResultCache returns an inference result cache (MUVR-style, §V.C)
// holding capacity entries that expire after ttl (≤0 means never).
func NewResultCache(capacity int, ttl time.Duration) *ResultCache {
	return pkgmgr.NewResultCache(capacity, ttl)
}

// CachedInfer is Infer through a ResultCache: bit-identical repeated
// inputs are served from cache. The second return reports a cache hit.
func (n *Node) CachedInfer(c *ResultCache, modelName string, x *Tensor) ([]int, []float64, bool, error) {
	res, hit, err := c.Infer(n.Manager, modelName, x)
	if err != nil {
		return nil, nil, false, err
	}
	return res.Classes, res.Confidences, hit, nil
}

// TransferLearn personalizes a loaded model on local data (Dataflow 3) and
// resets the model's serving pipeline so replicas serve the personalized
// weights.
func (n *Node) TransferLearn(modelName string, data Dataset, epochs int, seed int64) error {
	if err := n.Manager.TransferLearn(modelName, data, 1, epochs, rand.New(rand.NewSource(seed))); err != nil {
		return err
	}
	n.Serving.Reset(modelName)
	return nil
}

// Infer runs a loaded model on a batched input at normal priority and
// returns predicted classes with confidences.
func (n *Node) Infer(modelName string, x *Tensor) ([]int, []float64, error) {
	res, err := n.Manager.Infer(modelName, x)
	if err != nil {
		return nil, nil, err
	}
	return res.Classes, res.Confidences, nil
}

// ServeInfer pushes one single-sample request through the serving engine:
// it is coalesced with concurrent callers into a micro-batch and executed
// on a model replica. Under overload it fails fast with ErrOverloaded; a
// deadline (ServeInferWithin) that lapses in the queue fails with
// ErrServeDeadline.
func (n *Node) ServeInfer(modelName string, x *Tensor) (ServingResult, error) {
	return n.Serving.Infer(context.Background(), modelName, x)
}

// ServeInferWithin is ServeInfer with a per-request deadline.
func (n *Node) ServeInferWithin(modelName string, x *Tensor, d time.Duration) (ServingResult, error) {
	return n.Serving.InferWithDeadline(modelName, x, d)
}

// SetExitThreshold flips the live early-exit confidence knob on a served
// model: samples whose per-step classifier confidence reaches thr retire
// before consuming the full recurrent window. Values outside (0, 1]
// disable early exit. Reports whether the model's compiled plan supports
// the knob at all (always false for feed-forward models). The serving
// result's StepsUsed/TotalSteps and the per-exit histograms in
// /ei_metrics show the effect.
func (n *Node) SetExitThreshold(modelName string, thr float64) (bool, error) {
	return n.Serving.SetExitThreshold(modelName, thr)
}

// WithTenant attributes serving requests made with the returned context
// to the named tenant class (see ServingConfig.Tenants); unattributed
// requests ride the default class.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return serving.WithTenant(ctx, tenant)
}

// NewTensor builds an input tensor from raw values (copied) and a shape;
// batched model inputs have the sample count as the first dimension.
func NewTensor(data []float32, shape ...int) (*Tensor, error) {
	return tensor.NewFrom(append([]float32(nil), data...), shape...)
}

// Devices lists the built-in hardware catalog.
func Devices() []Device { return hardware.Catalog() }

// Packages lists the built-in runtime profiles.
func Packages() []Package { return alem.Packages() }

// Dial returns a client for a remote node's libei API.
func Dial(baseURL string) *Client { return libei.NewClient(baseURL) }

// DefaultRequirements is the walk-through default of §III.E: accuracy-
// oriented selection with a soft real-time latency budget.
func DefaultRequirements() Requirements {
	return Requirements{Objective: MaxAccuracy, MaxLatency: 100 * time.Millisecond}
}
