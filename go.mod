module openei

go 1.21
