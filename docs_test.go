package openei

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The documentation set the repo ships: every markdown file here is
// link-checked so a moved file or renamed doc fails CI instead of
// leaving a dead reference.
var docFiles = []string{
	"README.md",
	"ARCHITECTURE.md",
	"ROADMAP.md",
	"docs/METRICS.md",
	"docs/TRACING.md",
	"docs/KERNELS.md",
	"examples/health/README.md",
	"examples/smart_home/README.md",
	"examples/vehicles/README.md",
	"examples/safety_video/README.md",
	"examples/pipeline/README.md",
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinks is the docs lint: every relative markdown link in the
// doc set must resolve to a file that exists in the repo.
func TestDocsLinks(t *testing.T) {
	for _, f := range docFiles {
		body, err := os.ReadFile(f)
		if err != nil {
			t.Errorf("doc file missing: %v", err)
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			// Strip a #fragment; a bare fragment links within the file.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", f, m[1], resolved)
			}
		}
	}
}

// TestDocsCurrent pins the claims most likely to rot: the README must
// not resurrect the removed layer-walk fallback, and the docs the
// README links as its companions must mention the subsystems this
// repo actually ships.
func TestDocsCurrent(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(readme), "the fallback for") && strings.Contains(string(readme), `"layer-walk"`) {
		t.Error("README still documents the layer-walk fallback backend; recurrent stacks compile now")
	}
	for _, want := range []string{
		"-exit-threshold", "mean_steps_used", "fastgrnn-m", "-trace-sample", "/gw_trace", "-debug-addr",
		// The kernel arsenal: the backend list includes int4, kernel
		// dispatch is documented as observable, and the bench
		// trajectory tooling is discoverable.
		"int4", "packed-fma", "OPENEI_FORCE_SCALAR", "benchdiff", "docs/KERNELS.md",
	} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README does not mention %q", want)
		}
	}
	kernels, err := os.ReadFile("docs/KERNELS.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		// The dispatch names the metrics surface, the scalar override,
		// the contracts callers must not break, and the snapshot flow.
		"packed-fma", "qgemm-avx2", "direct-conv", "scalar", "OPENEI_FORCE_SCALAR",
		"QRound8", "slack", "per-output-channel scales", "benchdiff", "BENCH_",
	} {
		if !strings.Contains(string(kernels), want) {
			t.Errorf("docs/KERNELS.md does not document %q", want)
		}
	}
	metrics, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"exit_threshold", "mean_steps_used", "tenants", "cluster", "deadline_stopped",
		// The observability layer: stage histograms and the Prometheus view.
		"queue_wait_ms", "batch_wait_ms", "exec_ms",
		"GET /metrics", "version=0.0.4", "openei_serving_exec_ms", "tail_threshold_ms",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("docs/METRICS.md does not document %q", want)
		}
	}
	tracing, err := os.ReadFile("docs/TRACING.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"X-Openei-Trace", "queue_wait", "batch_wait", "exec",
		"-trace-sample", "-trace-ring", "/ei_trace", "/gw_trace",
		"winner", "p99", "-debug-addr", "-block-profile-rate", "-mutex-profile-fraction",
	} {
		if !strings.Contains(string(tracing), want) {
			t.Errorf("docs/TRACING.md does not document %q", want)
		}
	}
}
