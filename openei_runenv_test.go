package openei

import (
	"math/rand"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"openei/internal/dataset"
	"openei/internal/nn"
	"openei/internal/sensors"
	"openei/internal/zoo"
)

// detectorNode deploys a node with a trained lenet and a fed camera.
func detectorNode(t *testing.T) (*Node, *Model) {
	t.Helper()
	node, err := New(Config{NodeID: "edge", Device: "rpi4"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	cfg := dataset.ShapesConfig{Samples: 400, Size: 16, Classes: 4, Noise: 0.2, Seed: 9}
	train, _, err := dataset.Shapes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	model, err := zoo.Build("lenet", 16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Train(model, train, nn.TrainConfig{Epochs: 4, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	if err := node.LoadModel(model, false); err != nil {
		t.Fatal(err)
	}
	cam, err := sensors.NewCamera("camera1", 16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sensors.Feed(node.Store, cam, 3, t0, time.Second); err != nil {
		t.Fatal(err)
	}
	return node, model
}

func TestEnableMaskOverREST(t *testing.T) {
	node, _ := detectorNode(t)
	if err := node.EnableMask("camera1"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(node.Handler())
	defer ts.Close()
	var masked struct {
		Frame        []float32 `json:"frame"`
		MaskedPixels int       `json:"masked_pixels"`
		TotalPixels  int       `json:"total_pixels"`
	}
	if err := Dial(ts.URL).CallAlgorithm("safety", "mask", url.Values{"video": {"camera1"}}, &masked); err != nil {
		t.Fatal(err)
	}
	if masked.TotalPixels != 256 || masked.MaskedPixels == 0 {
		t.Fatalf("mask response: %d/%d", masked.MaskedPixels, masked.TotalPixels)
	}
	for _, v := range masked.Frame {
		if v >= 0.5 {
			t.Fatal("subject pixel survived the mask")
		}
	}
}

func TestNodeCachedInfer(t *testing.T) {
	node, model := detectorNode(t)
	sample, err := node.Store.Latest("camera1")
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewTensor(sample.Payload, 1, 1, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := NewResultCache(8, 0)
	cls1, _, hit, err := node.CachedInfer(c, model.Name, x)
	if err != nil || hit {
		t.Fatalf("first call: hit=%v err=%v", hit, err)
	}
	cls2, _, hit, err := node.CachedInfer(c, model.Name, x)
	if err != nil || !hit {
		t.Fatalf("second call: hit=%v err=%v", hit, err)
	}
	if cls1[0] != cls2[0] {
		t.Fatalf("cached class differs: %d vs %d", cls1[0], cls2[0])
	}
}

// TestRunningEnvironmentWiring drives the façade's §IV.C surface the way
// examples/pipeline does: bus → scheduler → inference, then failure →
// migration.
func TestRunningEnvironmentWiring(t *testing.T) {
	node, model := detectorNode(t)

	bus := NewBus()
	defer bus.Close()
	sub, err := bus.Subscribe("camera/topic", 4)
	if err != nil {
		t.Fatal(err)
	}
	sample, err := node.Store.Latest("camera1")
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Publish("camera/topic", sample.Payload); err != nil {
		t.Fatal(err)
	}

	sched := NewScheduler(8)
	defer sched.Close()
	done := make(chan error, 1)
	msg := <-sub.C()
	err = sched.Post(SchedulerTask{Name: "detect", Priority: TaskUrgent, Run: func() {
		x, err := NewTensor(msg.Payload.([]float32), 1, 1, 16, 16)
		if err != nil {
			done <- err
			return
		}
		_, _, err = node.Infer(model.Name, x)
		done <- err
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	vcu := NewVCU(node.Device())
	if _, err := vcu.Allocate(VCURequest{App: "safety", ComputeShare: 0.5, MemBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}

	mon := NewMonitor(time.Second)
	mig := NewMigrator(map[string]float64{"edge": node.Device().FLOPS, "peer": node.Device().FLOPS})
	now := time.Unix(1000, 0)
	mon.Heartbeat("edge", now)
	mon.Heartbeat("peer", now)
	if _, err := mig.Assign("detect", float64(model.FLOPs(1)), mon.Live(now)); err != nil {
		t.Fatal(err)
	}
	// Edge dies; the task must land on the surviving peer.
	mon.Heartbeat("peer", now.Add(5*time.Second))
	live := mon.Live(now.Add(5 * time.Second))
	if len(live) != 1 || live[0] != "peer" {
		t.Fatalf("live = %v", live)
	}
	if _, err := mig.MigrateOff(live); err != nil {
		t.Fatal(err)
	}
	for _, p := range mig.Placements() {
		if p.Node != "peer" {
			t.Fatalf("task %q still on %s", p.Task, p.Node)
		}
	}
}
