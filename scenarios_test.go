package openei

import (
	"math/rand"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"openei/internal/dataset"
	"openei/internal/nn"
	"openei/internal/sensors"
	"openei/internal/zoo"
)

// TestAllScenariosOnOneNode wires every §V scenario onto a single edge —
// the Figure 4 picture with all four application boxes populated — and
// checks the algorithm registry plus one live call per scenario.
func TestAllScenariosOnOneNode(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	node, err := New(Config{NodeID: "all-in-one", Device: "edge-server"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	rng := rand.New(rand.NewSource(1))

	// Vision model for safety + vehicles.
	shTrain, _, err := dataset.Shapes(dataset.ShapesConfig{Samples: 600, Size: 16, Classes: 4, Noise: 0.25, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	vision, err := zoo.Build("lenet", 16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Train(vision, shTrain, nn.TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	// Power and activity models.
	pwTrain, _, err := dataset.Power(dataset.PowerConfig{Samples: 400, Window: 32, Noise: 0.08, Seed: 56})
	if err != nil {
		t.Fatal(err)
	}
	power := nn.MustModel("power-net", []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: 24}, {Type: "relu"},
		{Type: "dense", In: 24, Out: 5},
	})
	power.InitParams(rng)
	if _, _, err := nn.Train(power, pwTrain, nn.TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	acTrain, _, err := dataset.Activity(dataset.ActivityConfig{Samples: 400, Window: 16, Noise: 0.15, Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	act := nn.MustModel("act-net", []int{48}, []nn.LayerSpec{
		{Type: "dense", In: 48, Out: 32}, {Type: "relu"},
		{Type: "dense", In: 32, Out: 4},
	})
	act.InitParams(rng)
	if _, _, err := nn.Train(act, acTrain, nn.TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Model{vision, power, act} {
		if err := node.LoadModel(m, false); err != nil {
			t.Fatal(err)
		}
	}

	// Sensors.
	t0 := time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)
	cam, err := sensors.NewCamera("camera1", 16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	meter, err := sensors.NewPowerMeter("meter1", 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	imu, err := sensors.NewIMU("imu1", 16, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []sensors.Driver{cam, meter, imu} {
		if _, err := sensors.Feed(node.Store, d, 6, t0, time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// All four scenarios.
	if err := node.EnableSafety("lenet", "camera1", dataset.ShapeClassNames[:4], 3); err != nil {
		t.Fatal(err)
	}
	if err := node.EnableVehicles("camera1", 6); err != nil {
		t.Fatal(err)
	}
	if err := node.EnableHome("power-net", "meter1", dataset.PowerClassNames); err != nil {
		t.Fatal(err)
	}
	if err := node.EnableHealth("act-net", "imu1", dataset.ActivityClassNames, 3); err != nil {
		t.Fatal(err)
	}
	if err := node.EnableMask("camera1"); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(node.Handler())
	defer ts.Close()
	client := Dial(ts.URL)

	algos, err := client.Algorithms()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"health/activity_recognition", "health/fall_detection",
		"home/power_monitor",
		"safety/detection", "safety/firearm_detection", "safety/mask",
		"serving/infer", // auto-registered by the node's serving engine
		"vehicles/tracking",
	}
	if len(algos) != len(want) {
		t.Fatalf("algorithms = %v, want %v", algos, want)
	}
	for i := range want {
		if algos[i] != want[i] {
			t.Fatalf("algorithms[%d] = %q, want %q", i, algos[i], want[i])
		}
	}
	// One live call per scenario; all must answer 200 with a result. The
	// serving route needs an explicit model and sample (one 32-value
	// power-meter window); the scenario algorithms default their sensor.
	for _, a := range want {
		parts := splitOnce(a)
		var args url.Values
		if a == "serving/infer" {
			vals := make([]string, 32)
			for i := range vals {
				vals[i] = "0.5"
			}
			args = url.Values{"model": {"power-net"}, "input": {strings.Join(vals, ",")}}
		}
		var out map[string]any
		if err := client.CallAlgorithm(parts[0], parts[1], args, &out); err != nil {
			t.Errorf("%s: %v", a, err)
		}
	}
	// The node reports all three models.
	ms, err := client.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Errorf("models = %d, want 3", len(ms))
	}
}

func splitOnce(s string) [2]string {
	for i := range s {
		if s[i] == '/' {
			return [2]string{s[:i], s[i+1:]}
		}
	}
	return [2]string{s, ""}
}
