package openei

import (
	"math/rand"
	"net/http/httptest"
	"net/url"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"openei/internal/chaos"
	"openei/internal/dataset"
	"openei/internal/gateway"
	"openei/internal/nn"
	"openei/internal/sensors"
	"openei/internal/serving"
	"openei/internal/zoo"
)

// TestAllScenariosOnOneNode wires every §V scenario onto a single edge —
// the Figure 4 picture with all four application boxes populated — and
// checks the algorithm registry plus one live call per scenario.
func TestAllScenariosOnOneNode(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	node, err := New(Config{NodeID: "all-in-one", Device: "edge-server"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	rng := rand.New(rand.NewSource(1))

	// Vision model for safety + vehicles.
	shTrain, _, err := dataset.Shapes(dataset.ShapesConfig{Samples: 600, Size: 16, Classes: 4, Noise: 0.25, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	vision, err := zoo.Build("lenet", 16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Train(vision, shTrain, nn.TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	// Power and activity models.
	pwTrain, _, err := dataset.Power(dataset.PowerConfig{Samples: 400, Window: 32, Noise: 0.08, Seed: 56})
	if err != nil {
		t.Fatal(err)
	}
	power := nn.MustModel("power-net", []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: 24}, {Type: "relu"},
		{Type: "dense", In: 24, Out: 5},
	})
	power.InitParams(rng)
	if _, _, err := nn.Train(power, pwTrain, nn.TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	acTrain, _, err := dataset.Activity(dataset.ActivityConfig{Samples: 400, Window: 16, Noise: 0.15, Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	act := nn.MustModel("act-net", []int{48}, []nn.LayerSpec{
		{Type: "dense", In: 48, Out: 32}, {Type: "relu"},
		{Type: "dense", In: 32, Out: 4},
	})
	act.InitParams(rng)
	if _, _, err := nn.Train(act, acTrain, nn.TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Model{vision, power, act} {
		if err := node.LoadModel(m, false); err != nil {
			t.Fatal(err)
		}
	}

	// Sensors.
	t0 := time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)
	cam, err := sensors.NewCamera("camera1", 16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	meter, err := sensors.NewPowerMeter("meter1", 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	imu, err := sensors.NewIMU("imu1", 16, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []sensors.Driver{cam, meter, imu} {
		if _, err := sensors.Feed(node.Store, d, 6, t0, time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// All four scenarios.
	if err := node.EnableSafety("lenet", "camera1", dataset.ShapeClassNames[:4], 3); err != nil {
		t.Fatal(err)
	}
	if err := node.EnableVehicles("camera1", 6); err != nil {
		t.Fatal(err)
	}
	if err := node.EnableHome("power-net", "meter1", dataset.PowerClassNames); err != nil {
		t.Fatal(err)
	}
	if err := node.EnableHealth("act-net", "imu1", dataset.ActivityClassNames, 3); err != nil {
		t.Fatal(err)
	}
	if err := node.EnableMask("camera1"); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(node.Handler())
	defer ts.Close()
	client := Dial(ts.URL)

	algos, err := client.Algorithms()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"health/activity_recognition", "health/fall_detection",
		"home/power_monitor",
		"safety/detection", "safety/firearm_detection", "safety/mask",
		"serving/infer", // auto-registered by the node's serving engine
		"vehicles/tracking",
	}
	if len(algos) != len(want) {
		t.Fatalf("algorithms = %v, want %v", algos, want)
	}
	for i := range want {
		if algos[i] != want[i] {
			t.Fatalf("algorithms[%d] = %q, want %q", i, algos[i], want[i])
		}
	}
	// One live call per scenario; all must answer 200 with a result. The
	// serving route needs an explicit model and sample (one 32-value
	// power-meter window); the scenario algorithms default their sensor.
	for _, a := range want {
		parts := splitOnce(a)
		var args url.Values
		if a == "serving/infer" {
			vals := make([]string, 32)
			for i := range vals {
				vals[i] = "0.5"
			}
			args = url.Values{"model": {"power-net"}, "input": {strings.Join(vals, ",")}}
		}
		var out map[string]any
		if err := client.CallAlgorithm(parts[0], parts[1], args, &out); err != nil {
			t.Errorf("%s: %v", a, err)
		}
	}
	// The node reports all three models.
	ms, err := client.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Errorf("models = %d, want 3", len(ms))
	}
}

func splitOnce(s string) [2]string {
	for i := range s {
		if s[i] == '/' {
			return [2]string{s[:i], s[i+1:]}
		}
	}
	return [2]string{s, ""}
}

// TestScenarioChaosSoak is the robustness acceptance scenario: a 4-node
// fleet behind the gateway, three tenants with distinct priorities
// mapped to the paper's example verticals, diurnal/bursty traffic over
// netsim links, and a fault schedule that kills a node, partitions a
// second, and makes a third flaky and slow — all mid-run.
//
// The contract asserted at the end:
//
//   - the high-priority tenant (safety_video) meets its SLO and is never
//     shed by admission,
//   - shedding is confined to the rate-limited low-priority tenant
//     (smart_home), confirmed by the per-tenant serving counters on the
//     nodes themselves,
//   - no request fails with anything but an admission 429 or deadline
//     408 — zero protocol-level failures,
//   - the gateway's failover machinery visibly absorbed the faults.
//
// The run shortens under -short (the CI race leg) and stretches to
// CHAOS_SOAK_SECONDS for the scheduled long soak; CHAOS_REPORT, when
// set, receives the JSON report as a CI artifact.
func TestScenarioChaosSoak(t *testing.T) {
	dur := 4 * time.Second
	if testing.Short() {
		dur = 2 * time.Second
	}
	if raw := os.Getenv("CHAOS_SOAK_SECONDS"); raw != "" {
		secs, err := strconv.Atoi(raw)
		if err != nil || secs <= 0 {
			t.Fatalf("bad CHAOS_SOAK_SECONDS=%q", raw)
		}
		dur = time.Duration(secs) * time.Second
	}

	fleet, err := chaos.NewFleet(chaos.FleetConfig{
		Nodes: 4,
		Seed:  20190707, // ICDCS'19 — any seed replays the same run
		Tenants: []serving.TenantConfig{
			// The §V verticals as admission classes: connected-vehicle
			// safety video outranks public-health analytics outranks
			// smart-home telemetry, and only the telemetry firehose is
			// rate-limited.
			{Name: "safety_video", Priority: 10, Weight: 4},
			{Name: "health", Priority: 5, Weight: 2},
			{Name: "smart_home", Priority: 0, Weight: 1, RatePerSec: 25, Burst: 10},
		},
		QueueDepth: 256,
		Gateway: gateway.Config{
			Retries:          6,
			Hedge:            150 * time.Millisecond,
			BreakerThreshold: 4,
			BreakerCooldown:  300 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	h := &chaos.Harness{
		Fleet:    fleet,
		Duration: dur,
		Traffic: []chaos.TenantTraffic{
			{Tenant: "safety_video", Model: "ident", RPS: 25, BurstFactor: 2,
				Deadline: time.Second, SLO: time.Second},
			{Tenant: "health", Model: "ident", RPS: 15, BurstFactor: 3,
				Deadline: time.Second},
			// The telemetry firehose offers ~3× its admitted rate at peak.
			{Tenant: "smart_home", Model: "ident", RPS: 50, BurstFactor: 2,
				Deadline: time.Second},
		},
		Events: []chaos.Event{
			{At: dur / 8, Node: 3, Action: chaos.Flaky, Rate: 0.15},
			{At: dur / 4, Node: 2, Action: chaos.Partition},
			{At: dur / 2, Node: 2, Action: chaos.Heal},
			{At: dur / 2, Node: 1, Action: chaos.Kill},
			{At: dur * 5 / 8, Node: 3, Action: chaos.Slow},
			{At: dur * 7 / 8, Node: 3, Action: chaos.Restore},
		},
	}
	rep, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteEnv(); err != nil {
		t.Errorf("write CHAOS_REPORT: %v", err)
	}

	for _, to := range rep.Tenants {
		if to.Sent == 0 {
			t.Errorf("tenant %s sent no traffic", to.Tenant)
		}
		if to.Other != 0 {
			t.Errorf("tenant %s: %d protocol-level failures (want only 429/408): %v",
				to.Tenant, to.Other, to.OtherSamples)
		}
	}
	safety := rep.Tenant("safety_video")
	smart := rep.Tenant("smart_home")
	if safety == nil || smart == nil {
		t.Fatal("missing tenant outcomes")
	}
	if safety.Overloaded != 0 {
		t.Errorf("safety_video shed %d times; admission must never touch the high-priority class", safety.Overloaded)
	}
	if safety.SLOAttainment < 0.90 {
		t.Errorf("safety_video SLO attainment %.3f < 0.90 (p95 %.1fms)", safety.SLOAttainment, safety.P95MS)
	}
	if smart.Overloaded == 0 {
		t.Error("smart_home firehose was never shed; the token bucket did not engage")
	}

	// Shed confinement, asserted from the nodes' own per-tenant counters
	// (the /ei_metrics payload), not just the client's view.
	shedBy := map[string]uint64{}
	for _, stats := range rep.NodeTenants {
		for _, ts := range stats {
			shedBy[ts.Tenant] += ts.ShedThrottle + ts.ShedQueue
		}
	}
	if shedBy["safety_video"] != 0 || shedBy["health"] != 0 {
		t.Errorf("shed leaked to high tenants: %v", shedBy)
	}
	if shedBy["smart_home"] == 0 {
		t.Error("node counters show no smart_home shed")
	}

	// The faults must have actually exercised the failover machinery.
	if rep.Gateway.Retried == 0 {
		t.Error("gateway never retried through kill+partition+flaky faults")
	}
	if rep.Gateway.HealthyNodes >= 4 {
		t.Errorf("healthy_nodes = %d after a node kill", rep.Gateway.HealthyNodes)
	}
	t.Logf("soak %s: safety slo=%.3f p95=%.1fms; smart shed=%d/%d; gw retried=%d hedged=%d",
		dur, safety.SLOAttainment, safety.P95MS, smart.Overloaded, smart.Sent,
		rep.Gateway.Retried, rep.Gateway.Hedged)
}
