// Ablation benchmarks for the design choices DESIGN.md §5 calls out:
// layer fusion on/off, int8 kernels on/off (the "co-optimization" claim),
// DDNN confidence-threshold sweep, partitioning policy, FastGRNN vs a
// dense baseline on sequence data, the MUVR-style result cache on/off,
// and the event-driven scheduler vs goroutine-per-task.
//
// Run: go test -bench=Ablation -benchmem .
package openei

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/collab"
	"openei/internal/dataset"
	"openei/internal/hardware"
	"openei/internal/netsim"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/runenv"
)

// BenchmarkAblationFusionAndInt8 measures the modelled latency of lenet
// under every (fusion, int8) combination on an rpi4, isolating each
// optimization's contribution.
func BenchmarkAblationFusionAndInt8(b *testing.B) {
	e := env(b)
	model := e.Models["lenet"]
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		b.Fatal(err)
	}
	base, err := alem.PackageByName("eipkg")
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name   string
		fusion bool
		int8   bool
	}{
		{"plain", false, false},
		{"fusion", true, false},
		{"int8", false, true},
		{"fusion+int8", true, true},
	}
	for _, c := range cases {
		pkg := base
		pkg.SupportsFusion = c.fusion
		pkg.SupportsInt8 = c.int8
		b.Run(c.name, func(b *testing.B) {
			prof := alem.NewProfiler(e.ShapesTest)
			var lat time.Duration
			for i := 0; i < b.N; i++ {
				a, err := prof.Profile(model, pkg, dev, alem.Variant{Quantized: c.int8})
				if err != nil {
					b.Fatal(err)
				}
				lat = a.Latency
			}
			b.ReportMetric(float64(lat.Microseconds()), "modelled-us")
		})
	}
}

// BenchmarkAblationDDNNThreshold sweeps the early-exit confidence
// threshold, reporting offload fraction and modelled latency.
func BenchmarkAblationDDNNThreshold(b *testing.B) {
	e := env(b)
	edge := benchManager(b, "eipkg", "rpi3")
	if err := edge.Load(e.Models["bonsai-m"], pkgmgr.LoadOptions{}); err != nil {
		b.Fatal(err)
	}
	cld := benchManager(b, "cloudpkg-m", "cloud-gpu")
	if err := cld.Load(e.Models["vgg-m"], pkgmgr.LoadOptions{}); err != nil {
		b.Fatal(err)
	}
	batch, err := e.ShapesTest.Slice(0, 64)
	if err != nil {
		b.Fatal(err)
	}
	for _, th := range []float64{0, 0.5, 0.9} {
		b.Run(fmt.Sprintf("threshold=%.1f", th), func(b *testing.B) {
			d := &collab.DDNN{
				Edge: edge, EdgeModel: "bonsai-m",
				Cloud: cld, CloudName: "vgg-m",
				Link: netsim.WAN, Threshold: th,
			}
			var offloaded int
			var lat time.Duration
			for i := 0; i < b.N; i++ {
				r, err := d.Infer(batch.X)
				if err != nil {
					b.Fatal(err)
				}
				offloaded = r.Offloaded
				lat = r.ModelLatency
			}
			b.ReportMetric(float64(offloaded), "offloaded")
			b.ReportMetric(float64(lat.Microseconds()), "modelled-us")
		})
	}
}

// BenchmarkAblationPartitionPolicy compares FLOP-proportional partitioning
// against a naive equal split on a heterogeneous pair (tx2 + rpi3): the
// proportional policy's critical path should be far shorter.
func BenchmarkAblationPartitionPolicy(b *testing.B) {
	e := env(b)
	model := e.Models["vgg-m"]
	fast := benchManager(b, "eipkg", "jetson-tx2")
	slow := benchManager(b, "eipkg", "rpi3")
	for _, m := range []*pkgmgr.Manager{fast, slow} {
		if err := m.Load(model, pkgmgr.LoadOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	batch, err := e.ShapesTest.Slice(0, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("flop-proportional", func(b *testing.B) {
		var lat time.Duration
		for i := 0; i < b.N; i++ {
			r, err := collab.PartitionedInfer([]*pkgmgr.Manager{fast, slow}, model.Name, batch.X, netsim.LAN)
			if err != nil {
				b.Fatal(err)
			}
			lat = r.ModelLatency
		}
		b.ReportMetric(float64(lat.Microseconds()), "modelled-us")
	})
	b.Run("equal-split-strawman", func(b *testing.B) {
		// Simulate an equal split: each peer infers half the batch; the
		// critical path is the slow peer's half.
		half, err := e.ShapesTest.Slice(0, 32)
		if err != nil {
			b.Fatal(err)
		}
		var lat time.Duration
		for i := 0; i < b.N; i++ {
			rf, err := fast.Infer(model.Name, half.X)
			if err != nil {
				b.Fatal(err)
			}
			rs, err := slow.Infer(model.Name, half.X)
			if err != nil {
				b.Fatal(err)
			}
			lat = rf.ModelLatency
			if rs.ModelLatency > lat {
				lat = rs.ModelLatency
			}
		}
		b.ReportMetric(float64(lat.Microseconds()), "modelled-us")
	})
}

// BenchmarkAblationRNNvsMLP compares FastGRNN against a dense baseline on
// the wearable activity task: comparable accuracy at a fraction of the
// parameters (the §IV.A.2 kilobyte-RNN premise).
func BenchmarkAblationRNNvsMLP(b *testing.B) {
	cfg := dataset.ActivityConfig{Samples: 600, Window: 16, Noise: 0.15, Seed: 70}
	train, test, err := dataset.Activity(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tmTrain, err := dataset.ActivityTimeMajor(train, cfg.Window)
	if err != nil {
		b.Fatal(err)
	}
	tmTest, err := dataset.ActivityTimeMajor(test, cfg.Window)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rnn := nn.MustModel("fastgrnn", []int{48}, []nn.LayerSpec{
		{Type: "fastgrnn", RNN: &nn.RNNSpec{T: cfg.Window, D: 3, H: 12}},
		{Type: "dense", In: 12, Out: 4},
	})
	rnn.InitParams(rng)
	mlp := nn.MustModel("mlp", []int{48}, []nn.LayerSpec{
		{Type: "dense", In: 48, Out: 64},
		{Type: "relu"},
		{Type: "dense", In: 64, Out: 4},
	})
	mlp.InitParams(rng)
	if _, _, err := nn.Train(rnn, tmTrain, nn.TrainConfig{Epochs: 15, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		b.Fatal(err)
	}
	if _, _, err := nn.Train(mlp, train, nn.TrainConfig{Epochs: 15, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		b.Fatal(err)
	}
	accRNN, err := nn.Accuracy(rnn, tmTest.X, tmTest.Y)
	if err != nil {
		b.Fatal(err)
	}
	accMLP, err := nn.Accuracy(mlp, test.X, test.Y)
	if err != nil {
		b.Fatal(err)
	}
	one, err := tmTest.Slice(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	oneMLP, err := test.Slice(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fastgrnn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rnn.Forward(one.X, false); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(accRNN, "accuracy")
		b.ReportMetric(float64(rnn.ParamCount()), "params")
	})
	b.Run("mlp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mlp.Forward(oneMLP.X, false); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(accMLP, "accuracy")
		b.ReportMetric(float64(mlp.ParamCount()), "params")
	})
}

// BenchmarkAblationResultCache measures repeated identical requests (the
// MUVR multi-user pattern of §V.C) with and without the result cache: the
// warm path should be orders of magnitude cheaper than re-running the
// model.
func BenchmarkAblationResultCache(b *testing.B) {
	e := env(b)
	mgr := benchManager(b, "eipkg", "rpi4")
	if err := mgr.Load(e.Models["lenet"], pkgmgr.LoadOptions{}); err != nil {
		b.Fatal(err)
	}
	one, err := e.ShapesTest.Slice(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mgr.Infer("lenet", one.X); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := pkgmgr.NewResultCache(64, 0)
		if _, _, err := c.Infer(mgr, "lenet", one.X); err != nil {
			b.Fatal(err) // warm the entry
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, hit, err := c.Infer(mgr, "lenet", one.X); err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
		st := c.Stats()
		b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "hit-rate")
	})
}

// BenchmarkAblationScheduler compares the runenv event-driven scheduler
// against naive goroutine-per-task dispatch for short tasks — the TinyOS
// premise that run-to-completion scheduling beats thread churn on
// constrained hardware.
func BenchmarkAblationScheduler(b *testing.B) {
	work := func() {
		s := 0
		for i := 0; i < 256; i++ {
			s += i
		}
		_ = s
	}
	b.Run("event-driven", func(b *testing.B) {
		s := runenv.NewScheduler(1 << 16)
		defer s.Close()
		var wg sync.WaitGroup
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wg.Add(1)
			if err := s.Post(runenv.Task{Name: "w", Run: func() {
				work()
				wg.Done()
			}}); err != nil {
				wg.Done()
				i-- // queue full: retry this iteration
				continue
			}
		}
		wg.Wait()
	})
	b.Run("goroutine-per-task", func(b *testing.B) {
		var wg sync.WaitGroup
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wg.Add(1)
			go func() {
				work()
				wg.Done()
			}()
		}
		wg.Wait()
	})
}
