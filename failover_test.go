package openei_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"openei"
	"openei/internal/collab"
	"openei/internal/dataset"
	"openei/internal/nn"
	"openei/internal/sensors"
	"openei/internal/zoo"
)

// TestFailoverIntegration exercises the §IV.C high-availability pipeline
// over real HTTP: two edges serve the same detection algorithm, a
// monitor tracks their heartbeats, and when the primary's server dies
// the migrator moves the task to the survivor, where the next REST call
// succeeds.
func TestFailoverIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	const (
		size    = 16
		classes = 4
	)
	rng := rand.New(rand.NewSource(2))
	train, _, err := dataset.Shapes(dataset.ShapesConfig{
		Samples: 500, Size: size, Classes: classes, Noise: 0.2, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := zoo.Build("lenet", size, classes, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Train(model, train, nn.TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}

	// Deploy two edges, each with the model, a fed camera, and the safety
	// scenario over HTTP.
	newServingEdge := func(id, device string, camSeed int64) (*openei.Node, *httptest.Server) {
		node, err := openei.New(openei.Config{NodeID: id, Device: device})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Close)
		if err := node.LoadModel(model, false); err != nil {
			t.Fatal(err)
		}
		cam, err := sensors.NewCamera("camera1", size, classes, camSeed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sensors.Feed(node.Store, cam, 4, time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC), time.Second); err != nil {
			t.Fatal(err)
		}
		if err := node.EnableSafety("lenet", "camera1", dataset.ShapeClassNames[:classes], 3); err != nil {
			t.Fatal(err)
		}
		return node, httptest.NewServer(node.Handler())
	}
	primary, primaryHTTP := newServingEdge("edge-a", "rpi3", 5)
	_, backupHTTP := newServingEdge("edge-b", "rpi4", 6)
	defer backupHTTP.Close()

	clients := map[string]*openei.Client{
		"edge-a": openei.Dial(primaryHTTP.URL),
		"edge-b": openei.Dial(backupHTTP.URL),
	}

	// Place the detection task; with equal expected runtimes the balancer
	// is deterministic, so pin the task to the primary by capacity tie.
	// Heartbeats come from the real REST probe: a peer that answers
	// /ei_status is alive (collab.PollHeartbeats).
	mon := openei.NewMonitor(2 * time.Second)
	mig := openei.NewMigrator(map[string]float64{
		"edge-a": 2 * primary.Device().FLOPS, // primary looks faster: task lands there
		"edge-b": primary.Device().FLOPS,
	})
	now := time.Unix(5000, 0)
	if alive, _ := collab.PollHeartbeats(context.Background(), mon, clients, now); len(alive) != 2 {
		t.Fatalf("initial heartbeat poll: alive = %v", alive)
	}
	placed, err := mig.Assign("safety/detection", float64(model.FLOPs(1)), mon.Live(now))
	if err != nil {
		t.Fatal(err)
	}
	if placed.Node != "edge-a" {
		t.Fatalf("task placed on %s, want edge-a", placed.Node)
	}

	// route calls the task's current host over REST.
	route := func() (string, error) {
		host := mig.Placements()[0].Node
		var det struct {
			Label string `json:"label"`
		}
		err := clients[host].CallAlgorithm("safety", "detection", url.Values{"video": {"camera1"}}, &det)
		if err != nil {
			return host, err
		}
		if det.Label == "" {
			t.Fatalf("empty detection from %s", host)
		}
		return host, nil
	}
	if host, err := route(); err != nil || host != "edge-a" {
		t.Fatalf("pre-failure route: host=%s err=%v", host, err)
	}

	// The primary dies: its HTTP server closes, so the next probe round
	// only refreshes the survivor.
	primaryHTTP.Close()
	later := now.Add(5 * time.Second)
	alive, probeErrs := collab.PollHeartbeats(context.Background(), mon, clients, later)
	if len(alive) != 1 || alive[0] != "edge-b" || probeErrs["edge-a"] == nil {
		t.Fatalf("post-failure poll: alive=%v errs=%v", alive, probeErrs)
	}
	if host, err := route(); err == nil {
		t.Fatalf("call to dead primary %s unexpectedly succeeded", host)
	} else if !strings.Contains(err.Error(), "refused") && !strings.Contains(err.Error(), "connect") {
		t.Logf("dead-primary error (transport-specific, informational): %v", err)
	}

	live := mon.Live(later)
	if len(live) != 1 || live[0] != "edge-b" {
		t.Fatalf("live set after silence = %v", live)
	}
	moved, err := mig.MigrateOff(live)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 1 || moved[0].Node != "edge-b" {
		t.Fatalf("migration result = %+v", moved)
	}

	// The same REST call now succeeds on the survivor.
	if host, err := route(); err != nil || host != "edge-b" {
		t.Fatalf("post-failure route: host=%s err=%v", host, err)
	}
}
