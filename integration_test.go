package openei_test

import (
	"math/rand"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"openei"
	"openei/internal/cloud"
	"openei/internal/collab"
	"openei/internal/dataset"
	"openei/internal/netsim"
	"openei/internal/nn"
	"openei/internal/sensors"
	"openei/internal/zoo"
)

// TestFullSystemIntegration drives the whole Figure 2 topology over real
// HTTP: a cloud registry serves a trained model; edge A pulls it through
// the registry client; edge B pulls the same model from *edge A* through
// libei's model-blob endpoint (edge–edge sharing); and a DDNN splits
// inference between edge A and the cloud.
func TestFullSystemIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	const (
		size    = 16
		classes = 4
	)
	rng := rand.New(rand.NewSource(1))
	train, test, err := dataset.Shapes(dataset.ShapesConfig{
		Samples: 700, Size: size, Classes: classes, Noise: 0.25, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}

	// ---- Cloud: train, publish, serve the registry over HTTP.
	registry := cloud.NewRegistry()
	svc := &cloud.TrainService{Registry: registry}
	detector, err := zoo.Build("lenet", size, classes, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, acc, err := svc.TrainAndPublish(detector, train, 6, 2); err != nil {
		t.Fatal(err)
	} else if acc < 0.8 {
		t.Fatalf("cloud training accuracy = %v", acc)
	}
	cloudHTTP := httptest.NewServer(&cloud.RegistryServer{Registry: registry})
	defer cloudHTTP.Close()

	// ---- Edge A: pull the model from the cloud over HTTP, serve libei.
	edgeA, err := openei.New(openei.Config{NodeID: "edge-a", Device: "rpi4"})
	if err != nil {
		t.Fatal(err)
	}
	defer edgeA.Close()
	regClient := cloud.NewRegistryClient(cloudHTTP.URL)
	blob, version, err := regClient.Fetch("lenet")
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Errorf("fetched version = %d", version)
	}
	model, err := nn.DecodeModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := edgeA.LoadModel(model, false); err != nil {
		t.Fatal(err)
	}
	cam, err := sensors.NewCamera("camera1", size, classes, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sensors.Feed(edgeA.Store, cam, 6, time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := edgeA.EnableSafety("lenet", "camera1", dataset.ShapeClassNames[:classes], 3); err != nil {
		t.Fatal(err)
	}
	edgeAHTTP := httptest.NewServer(edgeA.Handler())
	defer edgeAHTTP.Close()

	// The REST walk-through against edge A.
	clientA := openei.Dial(edgeAHTTP.URL)
	var det struct {
		Label      string  `json:"label"`
		Confidence float64 `json:"confidence"`
	}
	if err := clientA.CallAlgorithm("safety", "detection", url.Values{"video": {"camera1"}}, &det); err != nil {
		t.Fatal(err)
	}
	if det.Label == "" || det.Confidence <= 0 {
		t.Errorf("detection over HTTP = %+v", det)
	}

	// ---- Edge B: fetch the model from EDGE A (not the cloud) via libei.
	edgeB, err := openei.New(openei.Config{NodeID: "edge-b", Device: "rpi3"})
	if err != nil {
		t.Fatal(err)
	}
	defer edgeB.Close()
	peerBlob, err := clientA.ModelBlob("lenet")
	if err != nil {
		t.Fatal(err)
	}
	peerModel, err := nn.DecodeModel(peerBlob)
	if err != nil {
		t.Fatal(err)
	}
	if err := edgeB.LoadModel(peerModel, false); err != nil {
		t.Fatal(err)
	}
	// Both edges must agree on every test sample (same weights).
	clsA, _, err := edgeA.Infer("lenet", test.X)
	if err != nil {
		t.Fatal(err)
	}
	clsB, _, err := edgeB.Infer("lenet", test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clsA {
		if clsA[i] != clsB[i] {
			t.Fatalf("edge A and B disagree at %d after edge-edge model share", i)
		}
	}

	// ---- DDNN: edge A early-exits, cloud (a big model) takes the rest.
	cloudNode, err := openei.New(openei.Config{NodeID: "cloud", Device: "cloud-gpu", Package: "cloudpkg-m"})
	if err != nil {
		t.Fatal(err)
	}
	defer cloudNode.Close()
	big, err := zoo.Build("vgg-m", size, classes, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Train(big, train, nn.TrainConfig{Epochs: 6, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	if err := cloudNode.LoadModel(big, false); err != nil {
		t.Fatal(err)
	}
	ddnn := &collab.DDNN{
		Edge: edgeA.Manager, EdgeModel: "lenet",
		Cloud: cloudNode.Manager, CloudName: "vgg-m",
		Link: netsim.WAN, Threshold: 0.8,
	}
	res, err := ddnn.Infer(test.X)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, c := range res.Classes {
		if c == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(res.Classes)); acc < 0.8 {
		t.Errorf("DDNN accuracy = %v", acc)
	}
	if res.Offloaded == 0 {
		t.Log("DDNN offloaded nothing at threshold 0.8 (edge fully confident) — acceptable")
	}

	// ---- Edge B uploads a retrained model back to the cloud over HTTP.
	if err := edgeB.TransferLearn("lenet", train, 2, 4); err != nil {
		t.Fatal(err)
	}
	retrained, err := edgeB.Manager.Snapshot("lenet")
	if err != nil {
		t.Fatal(err)
	}
	v, err := regClient.Publish("lenet-edge-b", retrained)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("uploaded version = %d", v)
	}
	infos, err := regClient.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Errorf("registry has %d models, want 2", len(infos))
	}
}
